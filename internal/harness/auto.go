package harness

import (
	"fmt"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
)

// AutoCase builds a runnable Case for a kernel source file following the
// generator's parameter conventions, used by the command-line tools:
//
//   - "result"/"out": the ulong result buffer (one element per thread)
//   - "dead": the §5 EMI input, initialized dead[j] = j
//   - "comm": the BARRIER-mode communication array, uniformly 1
//   - "sec_c"/"sec_s": ATOMIC SECTION counters and special values, zeroed
//   - other pointer parameters: zero-filled buffers of one element per
//     thread (times 8 for safety with indexing schemes)
//   - scalar parameters: the value 8
func AutoCase(name, src string, nd exec.NDRange) (Case, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return Case{}, fmt.Errorf("harness: %v", err)
	}
	k := prog.Kernel()
	if k == nil {
		return Case{}, fmt.Errorf("harness: no kernel in %s", name)
	}
	params := k.Params
	n := nd.GlobalLinear()
	buffers := func() (exec.Args, *exec.Buffer) {
		args := exec.Args{}
		var result *exec.Buffer
		for _, p := range params {
			pt, isPtr := p.Type.(*cltypes.Pointer)
			if !isPtr {
				args[p.Name] = exec.Arg{Scalar: 8}
				continue
			}
			elem := pt.Elem
			switch p.Name {
			case "result", "out":
				b := exec.NewBuffer(elem, n)
				args[p.Name] = exec.Arg{Buf: b}
				result = b
			case "dead":
				b := exec.NewBuffer(elem, 16)
				for i := 0; i < 16; i++ {
					b.SetScalar(i, uint64(i))
				}
				args[p.Name] = exec.Arg{Buf: b}
			case "comm":
				b := exec.NewBuffer(elem, n)
				b.Fill(1)
				args[p.Name] = exec.Arg{Buf: b}
			case "sec_c", "sec_s":
				args[p.Name] = exec.Arg{Buf: exec.NewBuffer(elem, 1024)}
			default:
				args[p.Name] = exec.Arg{Buf: exec.NewBuffer(elem, n*8)}
			}
		}
		if result == nil {
			// Synthesize an unused result buffer so callers always have
			// something to report.
			result = exec.NewBuffer(cltypes.TULong, n)
		}
		return args, result
	}
	return Case{Name: name, Src: src, ND: nd, Buffers: buffers}, nil
}
