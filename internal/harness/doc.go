// Package harness orchestrates the paper's testing campaigns: the initial
// classification of configurations against a reliability threshold
// (Table 1, §7.1), intensive CLsmith-based differential testing (Table 4,
// §7.3), CLsmith+EMI testing (Table 5, §7.4) and EMI testing over the
// benchmark ports (Table 3, §7.2). Every campaign runs on the shared
// substrate in internal/campaign — the staged streaming pipeline with
// compile-once front/back caches, defect-model run deduplication, the
// cross-base result cache, one worker-budget planner and a deterministic
// ordered merge — and is fully deterministic in its seeds.
//
// # Record / fold split
//
// Each table runner is three deterministic pieces: a case list
// regenerated from the campaign parameters (including the
// execution-backed acceptance filters of Tables 4/5), a per-case record
// (a serializable summary of that case's observations), and a fold that
// assembles records — always in case order — into the rendered table.
// The public entry points (ClassifyConfigurations, EMIBenchmarkCampaign,
// CLsmithCampaign, EMICampaign) stream the whole case list; the shard
// driver runs an interleaved slice of it:
//
//   - RunShard executes cases i, i+n, i+2n, … and emits a ShardFile —
//     the machine-readable partial-results format behind
//     `cltables -shard i/n`;
//   - MergeShards validates that a set of shard files covers every case
//     exactly once and folds them into output byte-identical to the
//     unsharded run (`cltables -merge`);
//   - RenderCampaign is the unsharded path, implemented as a one-shard
//     run plus a merge so the two flows cannot diverge.
//
// determinism_test.go and shard_test.go pin the invariants byte for
// byte under -race — cached vs uncached compilation and results,
// sharded vs unsharded campaigns, parallel vs serial execution, VM vs
// tree engines — with the executor's immutable-program assertion
// (exec.SetDebugImmutable) armed.
//
// Entry points: RunOn / RunEverywhere for single cases, the four
// campaign runners, RunShard / MergeShards / RenderCampaign for
// sharding, and the RenderTable* formatters that print the paper's
// layouts.
package harness
