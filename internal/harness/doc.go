// Package harness orchestrates the paper's testing campaigns: the initial
// classification of configurations against a reliability threshold
// (Table 1, §7.1), intensive CLsmith-based differential testing (Table 4,
// §7.3), CLsmith+EMI testing (Table 5, §7.4) and EMI testing over the
// benchmark ports (Table 3, §7.2). Campaigns run test cases in parallel
// across a worker pool and are fully deterministic in their seeds.
//
// # Campaign engine
//
// Three layers keep campaigns fast without changing a single byte of
// output:
//
//   - Compile-once: each distinct kernel source is lexed and parsed once
//     (device.DefaultFrontCache), and the back end — check, folds,
//     optimize — runs once per distinct defect model
//     (device.DefaultBackCache), handing every matching configuration
//     the same immutable compiled kernel.
//   - Model dedup: (configuration, level) pairs whose defect models are
//     identical (modelKey) are byte-for-byte interchangeable — the
//     simulator is deterministic — so campaigns run one representative
//     per model and copy its result to the followers. Table 1's four
//     identical NVIDIA entries, the shared Intel CPU no-opt model and
//     Oclgrind's ignored optimization flag all collapse, in
//     RunEverywhere, ClassifyConfigurations and the Table 5 campaign;
//     Table 5 additionally keys on the variant's printed source, so EMI
//     prunings that collapse to identical text share one run.
//   - Worker budgeting: every kernel launch receives a work-group fan-out
//     allowance (ExecWorkers) equal to the machine parallelism left over
//     after case-level fan-out, so campaign-level and group-level
//     parallelism multiply to at most GOMAXPROCS. Saturated campaign
//     stages run groups serially; narrow stages (a single differential
//     test, a small acceptance batch) hand the idle cores to the
//     executor.
//
// determinism_test.go pins all three layers against cache-bypassing and
// serial reference paths, byte for byte, under -race, with the
// executor's immutable-program assertion (exec.SetDebugImmutable) armed.
//
// Entry points: RunOn / RunEverywhere for single cases,
// ClassifyConfigurations (Table 1), CLsmithCampaign (Table 4),
// EMICampaign (Table 5), EMIBenchmarkCampaign (Table 3), and the
// RenderTable* formatters that print the paper's layouts.
package harness
