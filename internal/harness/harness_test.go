package harness_test

import (
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
)

// TestClassification runs a scaled-down §7.1 initial campaign and checks
// that the configuration classification matches the paper's Table 1 final
// column: NVIDIA (1-4), anonymous driver 1c (9), the Intel CPUs (12-15)
// and Oclgrind (19) above the reliability threshold, the rest below.
func TestClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	rows := harness.ClassifyConfigurations(12, 7, 64, device.DefaultFuel)
	mismatches := 0
	for _, r := range rows {
		if !r.MatchesPaper {
			mismatches++
			t.Logf("config %d (%s): fail%%=%.1f above=%v paper=%v",
				r.Config.ID, r.Config.Device, 100*r.FailureRate(), r.Above, r.Config.PaperAboveThreshold)
		}
	}
	// The scaled-down campaign tolerates a small number of borderline
	// mismatches (the paper itself reports configurations near the
	// threshold); the full-size campaign in cmd/cltables matches exactly.
	if mismatches > 2 {
		t.Errorf("%d configurations classified differently from the paper", mismatches)
	}
}

// TestDifferentialTestingFindsWrongCode checks that the majority-vote
// oracle attributes wrong-code results to buggy configurations and never
// to the reference configuration.
func TestDifferentialTestingFindsWrongCode(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	cfgs := append([]*device.Config{device.Reference()}, harness.AboveThresholdConfigs()...)
	wrongs := 0
	for seed := int64(0); seed < 30; seed++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 9000 + seed, MaxTotalThreads: 48})
		c := harness.CaseFromKernel(k, "diff")
		rs := harness.RunEverywhere(cfgs, c, device.DefaultFuel)
		for _, key := range oracle.WrongCode(rs) {
			if key == "0-" || key == "0+" {
				t.Fatalf("seed %d: majority vote blamed the reference configuration", seed)
			}
			wrongs++
		}
	}
	if wrongs == 0 {
		t.Log("no wrong-code results in this small sample (acceptable; rates are low per kernel)")
	}
}
