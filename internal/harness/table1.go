package harness

import (
	"fmt"
	"strings"

	"clfuzz/internal/bugs"
	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// Table1Row is one configuration's classification result (§7.1).
type Table1Row struct {
	Config *device.Config
	// Failures counts build failures, runtime crashes and wrong-code
	// results over both optimization levels.
	Failures int
	// Tests is the number of (kernel, level) observations.
	Tests int
	// SlowCompiles counts compile-side timeouts, the Xeon Phi
	// special-case signal (§7.1).
	SlowCompiles int
	// Above is our classification: at most 25% failures and no
	// prohibitively-slow-compilation pattern.
	Above bool
	// MatchesPaper reports agreement with the paper's Table 1 column.
	MatchesPaper bool
}

// FailureRate returns the failure fraction.
func (r Table1Row) FailureRate() float64 {
	if r.Tests == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Tests)
}

// Threshold is the §7.1 reliability threshold: a configuration lies above
// it when no more than 25% of initial tests fail.
const Threshold = 0.25

// ClassifyConfigurations runs the §7.1 initial campaign: every
// configuration, with and without optimizations, over the initial kernel
// set (the paper used 600 kernels, 100 per mode), classifying each
// configuration against the reliability threshold. Wrong-code results are
// judged by disagreement with the majority over all observations of a
// kernel.
func ClassifyConfigurations(perMode int, seed int64, maxThreads int, baseFuel int64) []Table1Row {
	cfgs := device.All()
	var kernels []*generator.Kernel
	for _, mode := range generator.Modes {
		for i := 0; i < perMode; i++ {
			kernels = append(kernels, generator.Generate(generator.Options{
				Mode: mode, Seed: seed + int64(i) + int64(mode)*100003,
				MaxTotalThreads: maxThreads,
			}))
		}
	}
	fail := map[string]int{}
	slow := map[int]int{}
	tests := map[string]int{}
	type obs struct {
		results []oracle.Result
		compile map[string]bool // keys whose timeout came from compilation
	}
	// The (configuration, level) job list is the same for every kernel;
	// group it by defect model once, so each kernel compiles and runs only
	// one representative per model and copies the deterministic result to
	// the followers (configurations 1-4 share one NVIDIA model, the Intel
	// CPU no-opt levels another, and Oclgrind ignores the flag entirely —
	// the same modelKey dedupe RunEverywhere and the Table 5 campaign use).
	type job struct {
		cfg *device.Config
		opt bool
	}
	var jobs []job
	for _, cfg := range cfgs {
		jobs = append(jobs, job{cfg, false}, job{cfg, true})
	}
	reps, follower := groupJobs(len(jobs), func(i int) modelKey {
		return jobModelKey(jobs[i].cfg, jobs[i].opt)
	})
	observations := make([]obs, len(kernels))
	workers := ExecWorkers(len(kernels))
	parallelFor(len(kernels), func(i int) {
		c := CaseFromKernel(kernels[i], fmt.Sprintf("init-%d", i))
		fe := device.DefaultFrontCache.Get(c.Src)
		rs := make([]oracle.Result, len(jobs))
		compileTO := map[string]bool{}
		for _, ji := range reps {
			cfg, optimize := jobs[ji].cfg, jobs[ji].opt
			key := Key(cfg, optimize)
			cr := cfg.CompileFrontEnd(fe, optimize)
			if cr.Outcome != device.OK {
				rs[ji] = oracle.Result{Key: key, Outcome: cr.Outcome}
				if cr.Outcome == device.Timeout {
					compileTO[key] = true
				}
				continue
			}
			args, result := c.Buffers()
			rr := cr.Kernel.Run(c.ND, args, result, device.RunOptions{BaseFuel: baseFuel, Workers: workers})
			rs[ji] = oracle.Result{Key: key, Outcome: rr.Outcome, Output: rr.Output}
		}
		for ji, r := range follower {
			src := rs[r]
			key := Key(jobs[ji].cfg, jobs[ji].opt)
			out := src.Output
			if out != nil {
				out = append([]uint64(nil), out...)
			}
			rs[ji] = oracle.Result{Key: key, Outcome: src.Outcome, Output: out}
			if compileTO[src.Key] {
				compileTO[key] = true
			}
		}
		observations[i] = obs{results: rs, compile: compileTO}
	})
	for _, o := range observations {
		wrong := map[string]bool{}
		for _, k := range oracle.WrongCode(o.results) {
			wrong[k] = true
		}
		for _, r := range o.results {
			tests[r.Key]++
			switch {
			case r.Outcome == device.BuildFailure || r.Outcome == device.Crash:
				fail[r.Key]++
			case r.Outcome == device.OK && wrong[r.Key]:
				fail[r.Key]++
			case r.Outcome == device.Timeout && o.compile[r.Key]:
				id := keyID(r.Key)
				slow[id]++
			}
		}
	}
	var rows []Table1Row
	for _, cfg := range cfgs {
		f := fail[Key(cfg, false)] + fail[Key(cfg, true)]
		n := tests[Key(cfg, false)] + tests[Key(cfg, true)]
		row := Table1Row{
			Config:       cfg,
			Failures:     f,
			Tests:        n,
			SlowCompiles: slow[cfg.ID],
		}
		row.Above = row.FailureRate() <= Threshold
		// §7.1: the Xeon Phi was placed below the threshold because its
		// prohibitively slow compilation of struct+barrier kernels makes
		// intensive fuzzing impractical, independent of its failure rate.
		// The demotion applies only to that defect (configs with merely
		// slow optimizers, like 12/13, stay above, as in the paper).
		slowDefect := cfg.Opt.Defects.Has(bugs.FESlowStructBarrier) ||
			cfg.NoOpt.Defects.Has(bugs.FESlowStructBarrier)
		if slowDefect && row.SlowCompiles*10 > n {
			row.Above = false
		}
		row.MatchesPaper = row.Above == cfg.PaperAboveThreshold
		rows = append(rows, row)
	}
	return rows
}

func keyID(key string) int {
	var id int
	fmt.Sscanf(key, "%d", &id)
	return id
}

// RenderTable1 formats the classification like the paper's Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. The OpenCL implementations and devices tested\n")
	fmt.Fprintf(&b, "%-5s %-18s %-34s %-8s %-6s %8s %10s %s\n",
		"Conf.", "SDK", "Device", "Type", "OpenCL", "fail%", "above?", "paper")
	for _, r := range rows {
		mark := "X"
		if !r.Above {
			mark = "x"
		}
		paper := "X"
		if !r.Config.PaperAboveThreshold {
			paper = "x"
		}
		agree := ""
		if !r.MatchesPaper {
			agree = "  MISMATCH"
		}
		fmt.Fprintf(&b, "%-5d %-18s %-34s %-8s %-6s %7.1f%% %10s %6s%s\n",
			r.Config.ID, r.Config.SDK, r.Config.Device, r.Config.Type, r.Config.CLVersion,
			100*r.FailureRate(), mark, paper, agree)
	}
	return b.String()
}
