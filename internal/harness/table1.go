package harness

import (
	"context"
	"fmt"
	"strings"

	"clfuzz/internal/bugs"
	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// Table1Row is one configuration's classification result (§7.1).
type Table1Row struct {
	Config *device.Config
	// Failures counts build failures, runtime crashes and wrong-code
	// results over both optimization levels.
	Failures int
	// Tests is the number of (kernel, level) observations.
	Tests int
	// SlowCompiles counts compile-side timeouts, the Xeon Phi
	// special-case signal (§7.1).
	SlowCompiles int
	// Above is our classification: at most 25% failures and no
	// prohibitively-slow-compilation pattern.
	Above bool
	// MatchesPaper reports agreement with the paper's Table 1 column.
	MatchesPaper bool
}

// FailureRate returns the failure fraction.
func (r Table1Row) FailureRate() float64 {
	if r.Tests == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Tests)
}

// Threshold is the §7.1 reliability threshold: a configuration lies above
// it when no more than 25% of initial tests fail.
const Threshold = 0.25

// t1Result is one serializable (configuration, level) observation of a
// Table 1 kernel.
type t1Result struct {
	Key     string   `json:"key"`
	Outcome int      `json:"outcome"`
	Output  []uint64 `json:"output,omitempty"`
	// CompileTO marks a timeout that arose during compilation — the §7.1
	// prohibitively-slow-compilation signal.
	CompileTO bool `json:"compile_to,omitempty"`
}

// t1Record is one kernel's shard record: its observations over the full
// (configuration, level) matrix.
type t1Record struct {
	Results []t1Result `json:"results"`
}

// table1Kernel regenerates case i of the §7.1 campaign deterministically
// from the campaign parameters: the case list is mode-major, perMode
// kernels per generator mode.
func table1Kernel(perMode int, seed int64, maxThreads, i int) *generator.Kernel {
	mode := generator.Modes[i/perMode]
	return generator.Generate(generator.Options{
		Mode: mode, Seed: seed + int64(i%perMode) + int64(mode)*100003,
		MaxTotalThreads: maxThreads,
	})
}

func table1Cases(perMode int) int { return len(generator.Modes) * perMode }

// table1Record runs case i's full configuration matrix through the
// campaign engine (model-deduplicated, result-cached).
func table1Record(ctx context.Context, eng *campaign.Engine, cfgs []*device.Config, perMode int, seed int64, maxThreads int, baseFuel int64, i, width int) t1Record {
	k := table1Kernel(perMode, seed, maxThreads, i)
	c := CaseFromKernel(k, fmt.Sprintf("init-%d", i))
	rs := eng.RunMatrix(matrixFor(ctx, cfgs, c, baseFuel), width)
	rec := t1Record{Results: make([]t1Result, len(rs))}
	for j, r := range rs {
		rec.Results[j] = t1Result{
			Key:       r.Key,
			Outcome:   int(r.Outcome),
			Output:    r.Output,
			CompileTO: r.Compile && r.Outcome == device.Timeout,
		}
	}
	return rec
}

// table1Failed synthesizes the record of a case whose worker shard was
// quarantined by the fleet supervisor: every (configuration, level)
// observation reports a crash, so the fold counts the case against each
// configuration instead of silently shrinking the campaign.
func table1Failed(cfgs []*device.Config) t1Record {
	rec := t1Record{Results: make([]t1Result, 0, 2*len(cfgs))}
	for _, cfg := range cfgs {
		for _, opt := range []bool{false, true} {
			rec.Results = append(rec.Results, t1Result{Key: Key(cfg, opt), Outcome: int(device.Crash)})
		}
	}
	return rec
}

// foldTable1 classifies the configurations from the per-kernel records
// (in case order), reproducing the §7.1 thresholding.
func foldTable1(cfgs []*device.Config, records []t1Record) []Table1Row {
	fail := map[string]int{}
	slow := map[int]int{}
	tests := map[string]int{}
	for _, rec := range records {
		results := make([]oracle.Result, len(rec.Results))
		for i, r := range rec.Results {
			results[i] = oracle.Result{Key: r.Key, Outcome: device.Outcome(r.Outcome), Output: r.Output}
		}
		wrong := map[string]bool{}
		for _, k := range oracle.WrongCode(results) {
			wrong[k] = true
		}
		for i, r := range results {
			tests[r.Key]++
			switch {
			case r.Outcome == device.BuildFailure || r.Outcome == device.Crash:
				fail[r.Key]++
			case r.Outcome == device.OK && wrong[r.Key]:
				fail[r.Key]++
			case r.Outcome == device.Timeout && rec.Results[i].CompileTO:
				slow[keyID(r.Key)]++
			}
		}
	}
	var rows []Table1Row
	for _, cfg := range cfgs {
		f := fail[Key(cfg, false)] + fail[Key(cfg, true)]
		n := tests[Key(cfg, false)] + tests[Key(cfg, true)]
		row := Table1Row{
			Config:       cfg,
			Failures:     f,
			Tests:        n,
			SlowCompiles: slow[cfg.ID],
		}
		row.Above = row.FailureRate() <= Threshold
		// §7.1: the Xeon Phi was placed below the threshold because its
		// prohibitively slow compilation of struct+barrier kernels makes
		// intensive fuzzing impractical, independent of its failure rate.
		// The demotion applies only to that defect (configs with merely
		// slow optimizers, like 12/13, stay above, as in the paper).
		slowDefect := cfg.Opt.Defects.Has(bugs.FESlowStructBarrier) ||
			cfg.NoOpt.Defects.Has(bugs.FESlowStructBarrier)
		if slowDefect && row.SlowCompiles*10 > n {
			row.Above = false
		}
		row.MatchesPaper = row.Above == cfg.PaperAboveThreshold
		rows = append(rows, row)
	}
	return rows
}

// ClassifyConfigurations runs the §7.1 initial campaign: every
// configuration, with and without optimizations, over the initial kernel
// set (the paper used 600 kernels, 100 per mode), classifying each
// configuration against the reliability threshold. Wrong-code results are
// judged by disagreement with the majority over all observations of a
// kernel.
func ClassifyConfigurations(perMode int, seed int64, maxThreads int, baseFuel int64) []Table1Row {
	return classifyConfigurations(campaign.Default, perMode, seed, maxThreads, baseFuel)
}

func classifyConfigurations(eng *campaign.Engine, perMode int, seed int64, maxThreads int, baseFuel int64) []Table1Row {
	cfgs := device.All()
	n := table1Cases(perMode)
	records := make([]t1Record, n)
	campaign.Stream(nil, n, func(i, _ int) t1Record {
		return table1Record(nil, eng, cfgs, perMode, seed, maxThreads, baseFuel, i, n)
	}, func(i int, r t1Record) { records[i] = r })
	return foldTable1(cfgs, records)
}

func keyID(key string) int {
	var id int
	fmt.Sscanf(key, "%d", &id)
	return id
}

// RenderTable1 formats the classification like the paper's Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. The OpenCL implementations and devices tested\n")
	fmt.Fprintf(&b, "%-5s %-18s %-34s %-8s %-6s %8s %10s %s\n",
		"Conf.", "SDK", "Device", "Type", "OpenCL", "fail%", "above?", "paper")
	for _, r := range rows {
		mark := "X"
		if !r.Above {
			mark = "x"
		}
		paper := "X"
		if !r.Config.PaperAboveThreshold {
			paper = "x"
		}
		agree := ""
		if !r.MatchesPaper {
			agree = "  MISMATCH"
		}
		fmt.Fprintf(&b, "%-5d %-18s %-34s %-8s %-6s %7.1f%% %10s %6s%s\n",
			r.Config.ID, r.Config.SDK, r.Config.Device, r.Config.Type, r.Config.CLVersion,
			100*r.FailureRate(), mark, paper, agree)
	}
	return b.String()
}
