package harness

import (
	"context"

	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// Case is one runnable test case: kernel source plus launch geometry and
// an argument factory (buffers must be fresh per execution). It is the
// campaign engine's case type; the alias keeps the harness API the
// paper-facing vocabulary.
type Case = campaign.Case

// CaseFromKernel adapts a generated kernel.
func CaseFromKernel(k *generator.Kernel, name string) Case {
	return Case{Name: name, Src: k.Src, ND: k.ND, Buffers: k.Buffers}
}

// Key renders the paper's configuration notation: "12-" for optimizations
// disabled, "12+" for enabled.
func Key(cfg *device.Config, optimize bool) string {
	return campaign.Key(cfg, optimize)
}

// RunOn compiles and executes the case on one configuration at one
// optimization level through the shared campaign engine (compile caches,
// cross-base result cache), with the whole machine available for
// work-group fan-out. It is the single-shot entry point used by cldiff,
// the reducer and the examples.
func RunOn(cfg *device.Config, optimize bool, c Case, baseFuel int64) oracle.Result {
	r := campaign.Default.RunCase(cfg, optimize, c, campaign.LaunchOptions{
		BaseFuel: baseFuel, Workers: campaign.LaunchWorkers(1),
	})
	return r.AsOracle()
}

// RunOnUncached is RunOn with every cache level bypassed — the source is
// re-lexed, re-parsed, re-checked and re-optimized, and the kernel
// re-executed, for this call. It is the reference path the cache
// determinism tests compare against.
func RunOnUncached(cfg *device.Config, optimize bool, c Case, baseFuel int64) oracle.Result {
	key := Key(cfg, optimize)
	cr := cfg.CompileUncached(c.Src, optimize)
	if cr.Outcome != device.OK {
		return oracle.Result{Key: key, Outcome: cr.Outcome}
	}
	args, result := c.Buffers()
	rr := cr.Kernel.Run(c.ND, args, result, device.RunOptions{BaseFuel: baseFuel, Workers: campaign.LaunchWorkers(1)})
	return oracle.Result{Key: key, Outcome: rr.Outcome, Output: rr.Output}
}

// matrixFor builds the standard differential-test matrix: one source,
// every configuration at both optimization levels, in configuration
// order with the unoptimized level first. ctx (nil for run-to-
// completion) cancels the matrix's launches cooperatively.
func matrixFor(ctx context.Context, cfgs []*device.Config, c Case, baseFuel int64) campaign.Matrix {
	units := make([]campaign.Unit, 0, 2*len(cfgs))
	for _, cfg := range cfgs {
		units = append(units, campaign.Unit{Cfg: cfg, Opt: false}, campaign.Unit{Cfg: cfg, Opt: true})
	}
	return campaign.Matrix{
		Name:     c.Name,
		Sources:  []string{c.Src},
		ND:       c.ND,
		Buffers:  func(int) (exec.Args, *exec.Buffer) { return c.Buffers() },
		BaseFuel: baseFuel,
		Units:    units,
		Ctx:      ctx,
	}
}

// RunEverywhere runs the case on every configuration at both optimization
// levels, in parallel, returning results keyed per Key. The case source is
// parsed exactly once; each (configuration, level) pair runs only the
// cheap per-configuration back end, deduplicated by defect model.
func RunEverywhere(cfgs []*device.Config, c Case, baseFuel int64) []oracle.Result {
	return runEverywhereEng(campaign.Default, cfgs, c, baseFuel, 1)
}

func runEverywhereEng(eng *campaign.Engine, cfgs []*device.Config, c Case, baseFuel int64, width int) []oracle.Result {
	rs := eng.RunMatrix(matrixFor(nil, cfgs, c, baseFuel), width)
	out := make([]oracle.Result, len(rs))
	for i, r := range rs {
		out[i] = r.AsOracle()
	}
	return out
}

// RunEverywhereUncached is RunEverywhere with every cache bypassed: each
// (configuration, level) pair re-parses, re-compiles and re-executes the
// source, as the seed harness did. Used by the determinism tests.
func RunEverywhereUncached(cfgs []*device.Config, c Case, baseFuel int64) []oracle.Result {
	type job struct {
		cfg *device.Config
		opt bool
	}
	var jobs []job
	for _, cfg := range cfgs {
		jobs = append(jobs, job{cfg, false}, job{cfg, true})
	}
	results := make([]oracle.Result, len(jobs))
	campaign.Stream(nil, len(jobs), func(i, _ int) oracle.Result {
		return RunOnUncached(jobs[i].cfg, jobs[i].opt, c, baseFuel)
	}, func(i int, r oracle.Result) { results[i] = r })
	return results
}

// GenerateAccepted generates kernels in the given mode until n pass the
// acceptance filter the paper used (§7.3): each test must compile and
// terminate without crash or timeout on the generating configuration
// (config 1 with optimizations, the GTX Titan). Acceptance runs go
// through the campaign engine, so the campaign proper reuses them via
// the result cache.
func GenerateAccepted(mode generator.Mode, n int, seed int64, maxThreads int, emiBlocks func(i int) int, baseFuel int64) []*generator.Kernel {
	return generateAccepted(campaign.Default, mode, n, seed, maxThreads, emiBlocks, baseFuel)
}

func generateAccepted(eng *campaign.Engine, mode generator.Mode, n int, seed int64, maxThreads int, emiBlocks func(i int) int, baseFuel int64) []*generator.Kernel {
	gen1 := device.ByID(1)
	var out []*generator.Kernel
	// Generation is cheap; acceptance runs are the cost. Batch candidates
	// in parallel rounds until enough are accepted (candidates are
	// accepted in candidate order, so the result is independent of the
	// batching).
	next := seed
	for len(out) < n {
		batch := n - len(out)
		if batch < 4 {
			batch = 4
		}
		cands := make([]*generator.Kernel, batch)
		for i := range cands {
			eb := 0
			if emiBlocks != nil {
				eb = emiBlocks(int(next))
			}
			cands[i] = generator.Generate(generator.Options{
				Mode: mode, Seed: next, MaxTotalThreads: maxThreads, EMIBlocks: eb,
			})
			next++
		}
		campaign.Stream(nil, batch, func(i, launch int) bool {
			r := eng.RunCase(gen1, true, CaseFromKernel(cands[i], ""), campaign.LaunchOptions{
				BaseFuel: baseFuel, Workers: launch,
			})
			return r.Outcome == device.OK
		}, func(i int, ok bool) {
			if ok && len(out) < n {
				out = append(out, cands[i])
			}
		})
	}
	return out
}
