package harness

import (
	"fmt"
	"runtime"
	"sync"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// Case is one runnable test case: kernel source plus launch geometry and
// an argument factory (buffers must be fresh per execution).
type Case struct {
	Name    string
	Src     string
	ND      exec.NDRange
	Buffers func() (exec.Args, *exec.Buffer)
}

// CaseFromKernel adapts a generated kernel.
func CaseFromKernel(k *generator.Kernel, name string) Case {
	return Case{Name: name, Src: k.Src, ND: k.ND, Buffers: k.Buffers}
}

// Key renders the paper's configuration notation: "12-" for optimizations
// disabled, "12+" for enabled.
func Key(cfg *device.Config, optimize bool) string {
	if optimize {
		return fmt.Sprintf("%d+", cfg.ID)
	}
	return fmt.Sprintf("%d-", cfg.ID)
}

// ExecWorkers returns the work-group fan-out budget for one kernel launch
// inside a campaign stage that runs `width` cases concurrently: the
// machine's parallelism left over once case-level fan-out has claimed its
// workers. A saturated stage (width >= GOMAXPROCS) yields 1 — groups run
// serially, as before — while a narrow stage (a single differential test,
// a small acceptance batch) hands the idle cores to the executor. Both
// levels multiply to at most GOMAXPROCS, so campaign-level and group-level
// parallelism never oversubscribe the machine.
func ExecWorkers(width int) int {
	w := runtime.GOMAXPROCS(0)
	if width < 1 {
		width = 1
	}
	per := w / width
	if per < 1 {
		per = 1
	}
	return per
}

// RunOn compiles and executes the case on one configuration at one
// optimization level, with the whole machine available for work-group
// fan-out (it is the single-shot entry point used by cldiff, the reducer
// and the examples). The front end comes from the shared compile cache;
// callers that already hold a FrontEnd for the case (RunEverywhere does)
// should use RunOnFE to skip even the cache lookup.
func RunOn(cfg *device.Config, optimize bool, c Case, baseFuel int64) oracle.Result {
	return runCase(cfg, optimize, device.DefaultFrontCache.Get(c.Src), c, baseFuel, ExecWorkers(1))
}

// RunOnFE executes the case on one configuration at one optimization
// level, reusing a previously parsed front end for the case source.
func RunOnFE(cfg *device.Config, optimize bool, fe *device.FrontEnd, c Case, baseFuel int64) oracle.Result {
	return runCase(cfg, optimize, fe, c, baseFuel, ExecWorkers(1))
}

// runCase is the budgeted execution core behind every campaign runner:
// workers is the per-launch work-group fan-out allowance (ExecWorkers).
func runCase(cfg *device.Config, optimize bool, fe *device.FrontEnd, c Case, baseFuel int64, workers int) oracle.Result {
	key := Key(cfg, optimize)
	cr := cfg.CompileFrontEnd(fe, optimize)
	if cr.Outcome != device.OK {
		return oracle.Result{Key: key, Outcome: cr.Outcome}
	}
	args, result := c.Buffers()
	rr := cr.Kernel.Run(c.ND, args, result, device.RunOptions{BaseFuel: baseFuel, Workers: workers})
	return oracle.Result{Key: key, Outcome: rr.Outcome, Output: rr.Output}
}

// RunOnUncached is RunOn with both compile-cache levels bypassed: the
// source is re-lexed, re-parsed, re-checked and re-optimized for this
// call. It is the reference path the compile-cache determinism tests
// compare against.
func RunOnUncached(cfg *device.Config, optimize bool, c Case, baseFuel int64) oracle.Result {
	key := Key(cfg, optimize)
	cr := cfg.CompileUncached(c.Src, optimize)
	if cr.Outcome != device.OK {
		return oracle.Result{Key: key, Outcome: cr.Outcome}
	}
	args, result := c.Buffers()
	rr := cr.Kernel.Run(c.ND, args, result, device.RunOptions{BaseFuel: baseFuel, Workers: ExecWorkers(1)})
	return oracle.Result{Key: key, Outcome: rr.Outcome, Output: rr.Output}
}

// RunEverywhere runs the case on every configuration at both optimization
// levels, in parallel, returning results keyed per Key. The case source is
// parsed exactly once; each (configuration, level) pair runs only the
// cheap per-configuration back end.
func RunEverywhere(cfgs []*device.Config, c Case, baseFuel int64) []oracle.Result {
	return runEverywhereFE(cfgs, device.DefaultFrontCache.Get(c.Src), c, baseFuel, 1)
}

// RunEverywhereUncached is RunEverywhere with the front-end cache
// bypassed: every (configuration, level) pair re-parses the source, as the
// seed harness did. Used by the determinism tests.
func RunEverywhereUncached(cfgs []*device.Config, c Case, baseFuel int64) []oracle.Result {
	type job struct {
		cfg *device.Config
		opt bool
	}
	var jobs []job
	for _, cfg := range cfgs {
		jobs = append(jobs, job{cfg, false}, job{cfg, true})
	}
	results := make([]oracle.Result, len(jobs))
	parallelFor(len(jobs), func(i int) {
		results[i] = RunOnUncached(jobs[i].cfg, jobs[i].opt, c, baseFuel)
	})
	return results
}

// modelKey identifies everything about a (configuration, level) pair that
// can influence a test outcome in the simulation: the full defect model
// and whether the optimizer effectively runs. Pairs with equal keys are
// byte-for-byte interchangeable — the executor is deterministic — so a
// campaign runs one representative per model and copies the result to the
// others. Table 1's four identical NVIDIA entries, the shared Intel CPU
// no-opt model, and Oclgrind's ignored optimization flag all collapse.
type modelKey struct {
	lvl device.Level
	// effOpt is the optimization setting after NoOptimizer is applied.
	effOpt bool
}

func jobModelKey(cfg *device.Config, optimize bool) modelKey {
	return modelKey{lvl: cfg.Level(optimize), effOpt: optimize && !cfg.NoOptimizer}
}

// groupJobs partitions job indices 0..n-1 into representatives (first job
// of each distinct key, in order) and followers (job index → its
// representative's index). Campaigns use it to run one job per defect
// model and copy the deterministic result to the others.
func groupJobs[K comparable](n int, key func(i int) K) (reps []int, follower map[int]int) {
	follower = make(map[int]int)
	seen := make(map[K]int, n)
	for i := 0; i < n; i++ {
		k := key(i)
		if r, ok := seen[k]; ok {
			follower[i] = r
		} else {
			seen[k] = i
			reps = append(reps, i)
		}
	}
	return reps, follower
}

// runEverywhereFE runs every (configuration, level) pair on the front
// end. width is the number of RunEverywhere calls the caller itself runs
// concurrently (1 for a single differential test): group-level fan-out is
// budgeted against width × representatives, so a campaign that fans out
// over kernels (Table 4) does not multiply its parallelism again here.
func runEverywhereFE(cfgs []*device.Config, fe *device.FrontEnd, c Case, baseFuel int64, width int) []oracle.Result {
	type job struct {
		cfg *device.Config
		opt bool
	}
	var jobs []job
	for _, cfg := range cfgs {
		jobs = append(jobs, job{cfg, false}, job{cfg, true})
	}
	// Group jobs by defect model; run one representative per group.
	reps, follower := groupJobs(len(jobs), func(i int) modelKey {
		return jobModelKey(jobs[i].cfg, jobs[i].opt)
	})
	results := make([]oracle.Result, len(jobs))
	workers := ExecWorkers(width * len(reps))
	parallelFor(len(reps), func(ri int) {
		i := reps[ri]
		results[i] = runCase(jobs[i].cfg, jobs[i].opt, fe, c, baseFuel, workers)
	})
	for i, r := range follower {
		src := results[r]
		out := src.Output
		if out != nil {
			out = append([]uint64(nil), out...)
		}
		results[i] = oracle.Result{Key: Key(jobs[i].cfg, jobs[i].opt), Outcome: src.Outcome, Output: out}
	}
	return results
}

// parallelFor runs fn(0..n-1) across a bounded worker pool.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// GenerateAccepted generates kernels in the given mode until n pass the
// acceptance filter the paper used (§7.3): each test must compile and
// terminate without crash or timeout on the generating configuration
// (config 1 with optimizations, the GTX Titan).
func GenerateAccepted(mode generator.Mode, n int, seed int64, maxThreads int, emiBlocks func(i int) int, baseFuel int64) []*generator.Kernel {
	gen1 := device.ByID(1)
	var out []*generator.Kernel
	var mu sync.Mutex
	// Generation is cheap; acceptance runs are the cost. Batch candidates
	// in parallel rounds until enough are accepted.
	next := seed
	for len(out) < n {
		batch := n - len(out)
		if batch < 4 {
			batch = 4
		}
		cands := make([]*generator.Kernel, batch)
		for i := range cands {
			eb := 0
			if emiBlocks != nil {
				eb = emiBlocks(int(next))
			}
			cands[i] = generator.Generate(generator.Options{
				Mode: mode, Seed: next, MaxTotalThreads: maxThreads, EMIBlocks: eb,
			})
			next++
		}
		accepted := make([]bool, batch)
		workers := ExecWorkers(batch)
		parallelFor(batch, func(i int) {
			c := CaseFromKernel(cands[i], "")
			r := runCase(gen1, true, device.DefaultFrontCache.Get(c.Src), c, baseFuel, workers)
			accepted[i] = r.Outcome == device.OK
		})
		mu.Lock()
		for i, ok := range accepted {
			if ok && len(out) < n {
				out = append(out, cands[i])
			}
		}
		mu.Unlock()
	}
	return out
}
