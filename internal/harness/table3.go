package harness

import (
	"context"
	"fmt"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/benchmarks"
	"clfuzz/internal/campaign"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/emi"
	"clfuzz/internal/exec"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
)

// Table3Outcome is the worst observed outcome for one (benchmark,
// configuration) cell, in the paper's decreasing severity order (§7.2).
type Table3Outcome int

// Outcomes in decreasing severity.
const (
	T3OK    Table3Outcome = iota // all tests ran with no mismatch
	T3NG                         // generation with an empty EMI block failed
	T3TO                         // at least one variant timed out
	T3Crash                      // at least one variant crashed
	T3Wrong                      // at least one variant produced a wrong result
)

// Table3Cell is one cell of Table 3: the worst outcome plus the §7.2
// substitution annotation (e: substitutions had to be enabled, d: had to
// be disabled, ?: observed both ways).
type Table3Cell struct {
	Outcome Table3Outcome
	SubsOn  bool // provoked with substitutions enabled
	SubsOff bool // provoked with substitutions disabled
}

// Label renders the cell in the paper's notation.
func (c Table3Cell) Label() string {
	var base string
	switch c.Outcome {
	case T3OK:
		return "ok"
	case T3NG:
		return "ng"
	case T3TO:
		return "to"
	case T3Crash:
		base = "c"
	case T3Wrong:
		base = "w"
	}
	switch {
	case c.SubsOn && c.SubsOff:
		return base + "?"
	case c.SubsOn:
		return base + "e"
	case c.SubsOff:
		return base + "d"
	}
	return base
}

// Table3 holds the EMI-over-benchmarks campaign results.
type Table3 struct {
	Benchmarks []string
	Keys       []string // configuration ids (levels are combined per the paper)
	Cells      map[string]map[string]Table3Cell
	// RacyExcluded lists the benchmarks excluded because the race checker
	// flagged them (spmv and myocyte, §2.4).
	RacyExcluded []string
}

// table3Configs returns the configurations under EMI benchmark test: the
// Altera configurations are excluded, as in the paper (offline
// compilation did not integrate with the benchmark harness, §7.2).
func table3Configs() []*device.Config {
	var out []*device.Config
	for _, c := range device.All() {
		if c.ID != 20 && c.ID != 21 {
			out = append(out, c)
		}
	}
	return out
}

// t3Record is one benchmark's shard record: its computed row of Table 3
// cells, keyed by configuration name.
type t3Record struct {
	Cells map[string]Table3Cell `json:"cells"`
	// Skipped marks a benchmark whose reference run failed (the row is
	// left empty; tests assert this cannot happen).
	Skipped bool `json:"skipped,omitempty"`
}

// benchBuffers builds the argument factory for one benchmark source: the
// benchmark's own inputs, plus the §5 host-side protocol — dead[j] = j
// keeps every EMI block dead — when the (possibly injected) kernel
// declares a dead array.
func benchBuffers(eng *campaign.Engine, bench *benchmarks.Benchmark, src string) func() (exec.Args, *exec.Buffer) {
	hasDead := false
	if fe := eng.FrontEnd(src); fe.Err == nil && fe.Prog.Kernel() != nil {
		for _, p := range fe.Prog.Kernel().Params {
			if p.Name == "dead" {
				hasDead = true
			}
		}
	}
	return func() (exec.Args, *exec.Buffer) {
		args, result := bench.MakeArgs()
		if hasDead {
			dead := exec.NewBuffer(cltypes.TInt, 16)
			for i := 0; i < 16; i++ {
				dead.SetScalar(i, uint64(i))
			}
			args["dead"] = exec.Arg{Buf: dead}
		}
		return args, result
	}
}

// table3Record runs one benchmark's full EMI campaign — reference
// expected output, empty-block "ng" checks, and the injected variant
// matrix — and folds its row of cells.
func table3Record(ctx context.Context, eng *campaign.Engine, testCfgs []*device.Config, bench *benchmarks.Benchmark, variantsPerBench int, seed int64, baseFuel int64, width int) t3Record {
	ref := device.Reference()
	// Build the variant set once: per seed, substitutions on/off, with
	// a pruning applied to half of them. Each variant source is shared
	// by every (configuration, level) pair, so parse each one once.
	type variantMeta struct {
		src    string
		subsOn bool
	}
	var variants []variantMeta
	for v := 0; v < variantsPerBench; v++ {
		for _, subs := range []bool{false, true} {
			src, err := injectedVariant(bench.Src, seed+int64(v)*31, subs, v%2 == 1)
			if err != nil {
				continue
			}
			variants = append(variants, variantMeta{src: src, subsOn: subs})
		}
	}
	// One matrix carries the whole benchmark: the variant units, the
	// empty-block units behind the "ng" determination, and the reference
	// expectation run. Sources index: variants, then the unmodified
	// benchmark.
	benchSrc := len(variants)
	sources := make([]string, 0, len(variants)+1)
	buffers := make([]func() (exec.Args, *exec.Buffer), 0, len(variants)+1)
	for _, v := range variants {
		sources = append(sources, v.src)
		buffers = append(buffers, benchBuffers(eng, bench, v.src))
	}
	sources = append(sources, bench.Src)
	buffers = append(buffers, benchBuffers(eng, bench, bench.Src))
	var units []campaign.Unit
	for _, cfg := range testCfgs {
		for _, opt := range []bool{false, true} {
			for vi := range variants {
				units = append(units, campaign.Unit{Src: vi, Cfg: cfg, Opt: opt})
			}
		}
	}
	ngStart := len(units)
	for _, cfg := range testCfgs {
		for _, opt := range []bool{false, true} {
			units = append(units, campaign.Unit{Src: benchSrc, Cfg: cfg, Opt: opt})
		}
	}
	refUnit := len(units)
	units = append(units, campaign.Unit{Src: benchSrc, Cfg: ref, Opt: true})
	results := eng.RunMatrix(campaign.Matrix{
		Name:     bench.Name,
		Sources:  sources,
		ND:       bench.ND,
		Buffers:  func(src int) (exec.Args, *exec.Buffer) { return buffers[src]() },
		BaseFuel: baseFuel,
		Units:    units,
		Ctx:      ctx,
	}, width)
	rec := t3Record{Cells: map[string]Table3Cell{}}
	// Reference expected output (empty EMI block == original kernel). A
	// reference failure would be a harness bug; tests assert it.
	if results[refUnit].Outcome != device.OK {
		rec.Skipped = true
		return rec
	}
	expected := results[refUnit].Output
	// Per configuration: first determine ng (empty block on that config
	// disagrees with the expected output), then fold variant outcomes.
	ngIdx := ngStart
	vi := 0
	for _, cfg := range testCfgs {
		ng := false
		for range []bool{false, true} {
			out := results[ngIdx]
			ngIdx++
			if out.Outcome != device.OK || !oracle.Equal(out.Output, expected) {
				ng = true
			}
		}
		cell := Table3Cell{Outcome: T3OK}
		if ng {
			cell.Outcome = T3NG
		}
		raise := func(o Table3Outcome, subsOn bool) {
			if o > cell.Outcome {
				cell.Outcome = o
				cell.SubsOn, cell.SubsOff = false, false
			}
			if o == cell.Outcome && (o == T3Crash || o == T3Wrong) {
				if subsOn {
					cell.SubsOn = true
				} else {
					cell.SubsOff = true
				}
			}
		}
		for lv := 0; lv < 2; lv++ {
			for range variants {
				u := units[vi]
				r := results[vi]
				vi++
				subsOn := variants[u.Src].subsOn
				switch {
				case r.Outcome == device.Timeout:
					raise(T3TO, subsOn)
				case r.Outcome == device.Crash || r.Outcome == device.BuildFailure:
					// The paper folds build failures into "crash": online
					// compilation makes them indistinguishable without
					// extra per-benchmark work (§7.2 footnote 6).
					raise(T3Crash, subsOn)
				case r.Outcome == device.OK && !oracle.Equal(r.Output, expected):
					raise(T3Wrong, subsOn)
				}
			}
		}
		rec.Cells[cfg.Name()] = cell
	}
	return rec
}

// table3Failed synthesizes a benchmark row whose worker shard was
// quarantined: every configuration cell reports a crash.
func table3Failed(testCfgs []*device.Config) t3Record {
	rec := t3Record{Cells: map[string]Table3Cell{}}
	for _, cfg := range testCfgs {
		rec.Cells[cfg.Name()] = Table3Cell{Outcome: T3Crash}
	}
	return rec
}

// foldTable3 assembles the table from the per-benchmark records (in
// benchmark order).
func foldTable3(records []t3Record) *Table3 {
	t := &Table3{Cells: map[string]map[string]Table3Cell{}}
	for _, b := range benchmarks.Racy() {
		t.RacyExcluded = append(t.RacyExcluded, b.Name)
	}
	for _, cfg := range table3Configs() {
		t.Keys = append(t.Keys, cfg.Name())
	}
	for i, bench := range benchmarks.Clean() {
		t.Benchmarks = append(t.Benchmarks, bench.Name)
		if i < len(records) && !records[i].Skipped {
			t.Cells[bench.Name] = records[i].Cells
		}
	}
	return t
}

// EMIBenchmarkCampaign reproduces §7.2: for each race-free benchmark and
// each configuration, derive EMI-injected variants (substitutions on and
// off, both optimization levels, several injection seeds and prunings),
// compare each against the configuration's own empty-EMI-block output, and
// record the worst outcome. The expected output comes from the reference
// interpreter; a configuration that cannot reproduce it with an empty EMI
// block scores "ng".
func EMIBenchmarkCampaign(variantsPerBench int, seed int64, baseFuel int64) *Table3 {
	return emiBenchmarkCampaign(campaign.Default, variantsPerBench, seed, baseFuel)
}

func emiBenchmarkCampaign(eng *campaign.Engine, variantsPerBench int, seed int64, baseFuel int64) *Table3 {
	testCfgs := table3Configs()
	clean := benchmarks.Clean()
	records := make([]t3Record, len(clean))
	campaign.Stream(nil, len(clean), func(i, _ int) t3Record {
		return table3Record(nil, eng, testCfgs, clean[i], variantsPerBench, seed, baseFuel, len(clean))
	}, func(i int, r t3Record) { records[i] = r })
	return foldTable3(records)
}

// injectedVariant parses the benchmark source, injects EMI blocks
// (optionally with substitutions), optionally prunes them, and prints the
// result.
func injectedVariant(src string, seed int64, substitute, prune bool) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	if _, err := emi.Inject(prog, emi.InjectOptions{
		Seed: seed, Blocks: 1 + int(seed%2), Substitute: substitute,
	}); err != nil {
		return "", err
	}
	if prune {
		pruned, err := emi.Prune(prog, emi.PruneOpts{PLeaf: 0.3, PCompound: 0.3, PLift: 0.3, Seed: seed})
		if err != nil {
			return "", err
		}
		prog = pruned
	}
	return ast.Print(prog), nil
}

// RenderTable3 formats the campaign like the paper's Table 3.
func RenderTable3(t *Table3) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. EMI testing over the Parboil and Rodinia ports (excluded for data races: %s)\n",
		strings.Join(t.RacyExcluded, ", "))
	fmt.Fprintf(&b, "%-12s", "Benchmark")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%5s", k)
	}
	b.WriteByte('\n')
	for _, bench := range t.Benchmarks {
		fmt.Fprintf(&b, "%-12s", bench)
		for _, k := range t.Keys {
			fmt.Fprintf(&b, "%5s", t.Cells[bench][k].Label())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
