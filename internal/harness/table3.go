package harness

import (
	"fmt"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/benchmarks"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/emi"
	"clfuzz/internal/exec"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
)

// Table3Outcome is the worst observed outcome for one (benchmark,
// configuration) cell, in the paper's decreasing severity order (§7.2).
type Table3Outcome int

// Outcomes in decreasing severity.
const (
	T3OK    Table3Outcome = iota // all tests ran with no mismatch
	T3NG                         // generation with an empty EMI block failed
	T3TO                         // at least one variant timed out
	T3Crash                      // at least one variant crashed
	T3Wrong                      // at least one variant produced a wrong result
)

// Table3Cell is one cell of Table 3: the worst outcome plus the §7.2
// substitution annotation (e: substitutions had to be enabled, d: had to
// be disabled, ?: observed both ways).
type Table3Cell struct {
	Outcome Table3Outcome
	SubsOn  bool // provoked with substitutions enabled
	SubsOff bool // provoked with substitutions disabled
}

// Label renders the cell in the paper's notation.
func (c Table3Cell) Label() string {
	var base string
	switch c.Outcome {
	case T3OK:
		return "ok"
	case T3NG:
		return "ng"
	case T3TO:
		return "to"
	case T3Crash:
		base = "c"
	case T3Wrong:
		base = "w"
	}
	switch {
	case c.SubsOn && c.SubsOff:
		return base + "?"
	case c.SubsOn:
		return base + "e"
	case c.SubsOff:
		return base + "d"
	}
	return base
}

// Table3 holds the EMI-over-benchmarks campaign results.
type Table3 struct {
	Benchmarks []string
	Keys       []string // configuration ids (levels are combined per the paper)
	Cells      map[string]map[string]Table3Cell
	// RacyExcluded lists the benchmarks excluded because the race checker
	// flagged them (spmv and myocyte, §2.4).
	RacyExcluded []string
}

// EMIBenchmarkCampaign reproduces §7.2: for each race-free benchmark and
// each configuration, derive EMI-injected variants (substitutions on and
// off, both optimization levels, several injection seeds and prunings),
// compare each against the configuration's own empty-EMI-block output, and
// record the worst outcome. The expected output comes from the reference
// interpreter; a configuration that cannot reproduce it with an empty EMI
// block scores "ng".
func EMIBenchmarkCampaign(variantsPerBench int, seed int64, baseFuel int64) *Table3 {
	cfgs := device.All()
	// The Altera configurations are excluded, as in the paper (offline
	// compilation did not integrate with the benchmark harness, §7.2).
	var testCfgs []*device.Config
	for _, c := range cfgs {
		if c.ID != 20 && c.ID != 21 {
			testCfgs = append(testCfgs, c)
		}
	}
	t := &Table3{Cells: map[string]map[string]Table3Cell{}}
	for _, b := range benchmarks.Racy() {
		t.RacyExcluded = append(t.RacyExcluded, b.Name)
	}
	for _, cfg := range testCfgs {
		t.Keys = append(t.Keys, cfg.Name())
	}
	ref := device.Reference()
	for _, bench := range benchmarks.Clean() {
		t.Benchmarks = append(t.Benchmarks, bench.Name)
		row := map[string]Table3Cell{}
		// The unmodified benchmark source is compiled once per
		// (configuration, level); parse it a single time up front.
		benchFE := device.DefaultFrontCache.Get(bench.Src)
		// Reference expected output (empty EMI block == original kernel).
		expected, ok := runBenchmarkOnce(ref, true, bench, benchFE, baseFuel)
		if !ok {
			continue // reference failure would be a harness bug; tests assert it
		}
		// Build the variant set once: per seed, substitutions on/off, with
		// a pruning applied to half of them. Each variant source is shared
		// by every (configuration, level) pair, so parse each one once.
		type variant struct {
			fe     *device.FrontEnd
			subsOn bool
		}
		var variants []variant
		for v := 0; v < variantsPerBench; v++ {
			for _, subs := range []bool{false, true} {
				src, err := injectedVariant(bench.Src, seed+int64(v)*31, subs, v%2 == 1)
				if err != nil {
					continue
				}
				variants = append(variants, variant{fe: device.DefaultFrontCache.Get(src), subsOn: subs})
			}
		}
		type obs struct {
			outcome device.Outcome
			wrong   bool
			subsOn  bool
		}
		type cellJob struct {
			cfg *device.Config
			opt bool
			vi  int
		}
		var jobs []cellJob
		for _, cfg := range testCfgs {
			for _, opt := range []bool{false, true} {
				for vi := range variants {
					jobs = append(jobs, cellJob{cfg, opt, vi})
				}
			}
		}
		results := make([]obs, len(jobs))
		workers := ExecWorkers(len(jobs))
		parallelFor(len(jobs), func(i int) {
			j := jobs[i]
			out, okRun := runBenchmarkEMI(j.cfg, j.opt, bench, variants[j.vi].fe, baseFuel, workers)
			o := obs{subsOn: variants[j.vi].subsOn}
			o.outcome = out.Outcome
			if out.Outcome == device.OK {
				o.wrong = !oracle.Equal(out.Output, expected)
			}
			_ = okRun
			results[i] = o
		})
		// Per configuration: first determine ng (empty block on that
		// config disagrees with the expected output), then fold variant
		// outcomes.
		for _, cfg := range testCfgs {
			ng := false
			for _, opt := range []bool{false, true} {
				out, okRun := runBenchmarkEMI(cfg, opt, bench, benchFE, baseFuel, ExecWorkers(1))
				if !okRun || out.Outcome != device.OK || !oracle.Equal(out.Output, expected) {
					ng = true
				}
			}
			cell := Table3Cell{Outcome: T3OK}
			if ng {
				cell.Outcome = T3NG
			}
			raise := func(o Table3Outcome, subsOn bool) {
				if o > cell.Outcome {
					cell.Outcome = o
					cell.SubsOn, cell.SubsOff = false, false
				}
				if o == cell.Outcome && (o == T3Crash || o == T3Wrong) {
					if subsOn {
						cell.SubsOn = true
					} else {
						cell.SubsOff = true
					}
				}
			}
			for i, j := range jobs {
				if j.cfg != cfg {
					continue
				}
				o := results[i]
				switch {
				case o.outcome == device.Timeout:
					raise(T3TO, o.subsOn)
				case o.outcome == device.Crash || o.outcome == device.BuildFailure:
					// The paper folds build failures into "crash": online
					// compilation makes them indistinguishable without
					// extra per-benchmark work (§7.2 footnote 6).
					raise(T3Crash, o.subsOn)
				case o.outcome == device.OK && o.wrong:
					raise(T3Wrong, o.subsOn)
				}
			}
			row[cfg.Name()] = cell
		}
		t.Cells[bench.Name] = row
	}
	return t
}

// injectedVariant parses the benchmark source, injects EMI blocks
// (optionally with substitutions), optionally prunes them, and prints the
// result.
func injectedVariant(src string, seed int64, substitute, prune bool) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	if _, err := emi.Inject(prog, emi.InjectOptions{
		Seed: seed, Blocks: 1 + int(seed%2), Substitute: substitute,
	}); err != nil {
		return "", err
	}
	if prune {
		pruned, err := emi.Prune(prog, emi.PruneOpts{PLeaf: 0.3, PCompound: 0.3, PLift: 0.3, Seed: seed})
		if err != nil {
			return "", err
		}
		prog = pruned
	}
	return ast.Print(prog), nil
}

// runBenchmarkOnce runs the unmodified benchmark on a configuration and
// returns its output.
func runBenchmarkOnce(cfg *device.Config, optimize bool, bench *benchmarks.Benchmark, fe *device.FrontEnd, baseFuel int64) ([]uint64, bool) {
	out, ok := runBenchmarkEMI(cfg, optimize, bench, fe, baseFuel, ExecWorkers(1))
	if !ok || out.Outcome != device.OK {
		return nil, false
	}
	return out.Output, true
}

// runBenchmarkEMI compiles and runs a benchmark front end (possibly EMI-
// injected) on a configuration, wiring the host-initialized dead array
// when the kernel declares one. workers is the per-launch work-group
// fan-out budget (ExecWorkers).
func runBenchmarkEMI(cfg *device.Config, optimize bool, bench *benchmarks.Benchmark, fe *device.FrontEnd, baseFuel int64, workers int) (device.RunResult, bool) {
	cr := cfg.CompileFrontEnd(fe, optimize)
	if cr.Outcome != device.OK {
		return device.RunResult{Outcome: cr.Outcome, Msg: cr.Msg}, true
	}
	args, result := bench.MakeArgs()
	// The §5 host-side protocol: dead[j] = j keeps every EMI block dead.
	for _, p := range cr.Kernel.Prog.Kernel().Params {
		if p.Name == "dead" {
			dead := exec.NewBuffer(cltypes.TInt, 16)
			for i := 0; i < 16; i++ {
				dead.SetScalar(i, uint64(i))
			}
			args["dead"] = exec.Arg{Buf: dead}
		}
	}
	rr := cr.Kernel.Run(bench.ND, args, result, device.RunOptions{BaseFuel: baseFuel, Workers: workers})
	return rr, true
}

// RenderTable3 formats the campaign like the paper's Table 3.
func RenderTable3(t *Table3) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. EMI testing over the Parboil and Rodinia ports (excluded for data races: %s)\n",
		strings.Join(t.RacyExcluded, ", "))
	fmt.Fprintf(&b, "%-12s", "Benchmark")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%5s", k)
	}
	b.WriteByte('\n')
	for _, bench := range t.Benchmarks {
		fmt.Fprintf(&b, "%-12s", bench)
		for _, k := range t.Keys {
			fmt.Fprintf(&b, "%5s", t.Cells[bench][k].Label())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
