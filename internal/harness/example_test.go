package harness_test

import (
	"fmt"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
)

// ExampleRunEverywhere runs one differential test — the unit of the
// Table 4 campaign: a kernel executes on every Table 1 configuration at
// both optimization levels (compiled once, deduplicated by defect model),
// and the majority-vote oracle flags the configuration-levels whose
// output deviates.
func ExampleRunEverywhere() {
	src := `
kernel void k(global ulong *out) {
    ulong acc = 6;
    for (int i = 0; i < 6; i++) { acc = acc * 47UL + 3UL; }
    out[get_linear_global_id()] = acc;
}
`
	nd := exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{4, 1, 1}}
	c := harness.Case{
		Name: "demo",
		Src:  src,
		ND:   nd,
		Buffers: func() (exec.Args, *exec.Buffer) {
			out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
			return exec.Args{"out": {Buf: out}}, out
		},
	}
	results := harness.RunEverywhere(device.All(), c, 0)
	ok := 0
	for _, r := range results {
		if r.Outcome == device.OK {
			ok++
		}
	}
	fmt.Printf("%d results, %d ran ok\n", len(results), ok)
	fmt.Println("flagged wrong:", oracle.WrongCode(results))
	// Output:
	// 42 results, 32 ran ok
	// flagged wrong: [10- 10+ 11- 11+ 16- 16+]
}
