package harness_test

import (
	"strings"
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/harness"
)

// TestAutoCase: the CLI case builder wires the generator's parameter
// conventions so any generated kernel runs without a bespoke host.
func TestAutoCase(t *testing.T) {
	for _, mode := range []generator.Mode{generator.ModeBarrier, generator.ModeAtomicSection, generator.ModeAll} {
		k := generator.Generate(generator.Options{Mode: mode, Seed: 99, MaxTotalThreads: 32, EMIBlocks: 1})
		c, err := harness.AutoCase("k", k.Src, k.ND)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		r := harness.RunOn(device.Reference(), true, c, 0)
		if r.Outcome != device.OK {
			t.Fatalf("%s: AutoCase run failed: %s", mode, r.Outcome)
		}
		// AutoCase buffers must match the generator's own buffers: the
		// results agree.
		gr := harness.RunOn(device.Reference(), true, harness.CaseFromKernel(k, "g"), 0)
		if gr.Outcome != device.OK {
			t.Fatal("generator buffers failed")
		}
		for i := range r.Output {
			if r.Output[i] != gr.Output[i] {
				t.Fatalf("%s: AutoCase and generator buffers disagree", mode)
			}
		}
	}
	if _, err := harness.AutoCase("bad", "int f(void) { return 1; }", exec.NDRange{}); err == nil {
		t.Error("AutoCase accepted a program without a kernel")
	}
}

// TestKeys: the paper's ± notation.
func TestKeys(t *testing.T) {
	cfg := device.ByID(12)
	if harness.Key(cfg, true) != "12+" || harness.Key(cfg, false) != "12-" {
		t.Errorf("Key notation wrong: %s %s", harness.Key(cfg, true), harness.Key(cfg, false))
	}
}

// TestAboveThresholdConfigs matches the paper's set.
func TestAboveThresholdConfigs(t *testing.T) {
	got := map[int]bool{}
	for _, c := range harness.AboveThresholdConfigs() {
		got[c.ID] = true
	}
	want := []int{1, 2, 3, 4, 9, 12, 13, 14, 15, 19}
	if len(got) != len(want) {
		t.Fatalf("have %d above-threshold configs, want %d", len(got), len(want))
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("config %d missing from the above-threshold set", id)
		}
	}
}

// TestGenerateAccepted: the §7.3 acceptance filter (compiles and
// terminates on 1+) holds for every produced kernel.
func TestGenerateAccepted(t *testing.T) {
	kernels := harness.GenerateAccepted(generator.ModeBasic, 5, 77, 32, nil, 0)
	if len(kernels) != 5 {
		t.Fatalf("got %d kernels, want 5", len(kernels))
	}
	gen1 := device.ByID(1)
	for i, k := range kernels {
		r := harness.RunOn(gen1, true, harness.CaseFromKernel(k, "a"), 0)
		if r.Outcome != device.OK {
			t.Errorf("kernel %d fails the acceptance configuration: %s", i, r.Outcome)
		}
	}
}

// TestTable4Small runs a minimal intensive campaign and checks its
// structural invariants: counts per cell sum to the test count, and the
// defect-free rows exist.
func TestTable4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	t4 := harness.CLsmithCampaign(3, 555, 32, 0)
	for _, mode := range generator.Modes {
		n := t4.Tests[mode]
		if n != 3 {
			t.Errorf("%s: %d tests, want 3", mode, n)
		}
		for key, st := range t4.PerMode[mode] {
			if got := st.W + st.BF + st.C + st.TO + st.OK; got != n {
				t.Errorf("%s %s: outcomes sum to %d, want %d", mode, key, got, n)
			}
		}
	}
	out := harness.RenderTable4(t4)
	if !strings.Contains(out, "BARRIER") || !strings.Contains(out, "19+") {
		t.Error("rendered table missing expected rows/columns")
	}
}

// TestTable3CellLabels pins the paper's outcome notation.
func TestTable3CellLabels(t *testing.T) {
	cases := []struct {
		cell harness.Table3Cell
		want string
	}{
		{harness.Table3Cell{Outcome: harness.T3OK}, "ok"},
		{harness.Table3Cell{Outcome: harness.T3NG}, "ng"},
		{harness.Table3Cell{Outcome: harness.T3TO}, "to"},
		{harness.Table3Cell{Outcome: harness.T3Crash, SubsOn: true}, "ce"},
		{harness.Table3Cell{Outcome: harness.T3Crash, SubsOff: true}, "cd"},
		{harness.Table3Cell{Outcome: harness.T3Wrong, SubsOn: true, SubsOff: true}, "w?"},
		{harness.Table3Cell{Outcome: harness.T3Wrong, SubsOn: true}, "we"},
	}
	for _, c := range cases {
		if got := c.cell.Label(); got != c.want {
			t.Errorf("label = %q, want %q", got, c.want)
		}
	}
}
