package harness

import (
	"fmt"
	"sync"
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// armImmutableAssert makes every exec.Run of the test verify the
// executor's read-only-AST contract: compiled kernels are shared across
// configurations by the back cache, so a single in-place mutation would
// silently corrupt every later launch of the same program. Under -race
// (CI runs this file with the detector on) the assertion also pins the
// contract against concurrent launches of one shared kernel.
func armImmutableAssert(t *testing.T) {
	t.Helper()
	exec.SetDebugImmutable(true)
	t.Cleanup(func() { exec.SetDebugImmutable(false) })
}

// goldenSeeds is the fixed seed set the compile-cache regression tests run
// over: a mix of generator modes exercising scalars, vectors, barriers and
// structs, so the cached front end is compared against the uncached path
// across every compilation shape.
type goldenSeed struct {
	mode generator.Mode
	seed int64
}

var goldenSeeds = []goldenSeed{
	{generator.ModeBasic, 42},
	{generator.ModeBasic, 1000},
	{generator.ModeVector, 7},
	{generator.ModeBarrier, 11},
	{generator.ModeAll, 5},
}

func goldenCases(t *testing.T) []Case {
	t.Helper()
	seeds := goldenSeeds
	if testing.Short() {
		// CI skips the long-running ModeBasic/1000 kernel (the
		// BenchmarkDifferentialTest workload); full runs keep it.
		seeds = []goldenSeed{goldenSeeds[0], goldenSeeds[2], goldenSeeds[3], goldenSeeds[4]}
	}
	cases := make([]Case, 0, len(seeds))
	for _, gs := range seeds {
		k := generator.Generate(generator.Options{
			Mode: gs.mode, Seed: gs.seed, MaxTotalThreads: 16,
		})
		cases = append(cases, CaseFromKernel(k, fmt.Sprintf("golden-%s-%d", gs.mode, gs.seed)))
	}
	return cases
}

func requireSameResults(t *testing.T, label string, got, want []oracle.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Key != w.Key {
			t.Fatalf("%s[%d]: key %q, want %q", label, i, g.Key, w.Key)
		}
		if g.Outcome != w.Outcome {
			t.Fatalf("%s[%d] %s: outcome %v, want %v", label, i, g.Key, g.Outcome, w.Outcome)
		}
		if len(g.Output) != len(w.Output) {
			t.Fatalf("%s[%d] %s: %d outputs, want %d", label, i, g.Key, len(g.Output), len(w.Output))
		}
		for j := range w.Output {
			if g.Output[j] != w.Output[j] {
				t.Fatalf("%s[%d] %s: out[%d] = %#x, want %#x", label, i, g.Key, j, g.Output[j], w.Output[j])
			}
		}
	}
}

// TestCompileCacheDeterminism asserts the central compile-once invariant:
// RunEverywhere through the shared front-end cache (with model-level run
// deduplication) produces byte-identical oracle.Result sets — keys,
// outcomes and outputs — to the cache-bypassing path that re-lexes and
// re-parses the source for every (configuration, level) pair.
func TestCompileCacheDeterminism(t *testing.T) {
	armImmutableAssert(t)
	cfgs := device.All()
	for _, c := range goldenCases(t) {
		got := RunEverywhere(cfgs, c, 0)
		want := RunEverywhereUncached(cfgs, c, 0)
		requireSameResults(t, c.Name, got, want)
	}
}

// TestConcurrentCampaignsDeterministic runs two full campaigns over the
// golden seeds concurrently, sharing device.DefaultFrontCache, and checks
// both against the uncached reference. Run under -race this also verifies
// the cache's synchronization.
func TestConcurrentCampaignsDeterministic(t *testing.T) {
	armImmutableAssert(t)
	cfgs := device.All()
	cases := goldenCases(t)
	want := make([][]oracle.Result, len(cases))
	for i, c := range cases {
		want[i] = RunEverywhereUncached(cfgs, c, 0)
	}
	const campaigns = 2
	got := make([][][]oracle.Result, campaigns)
	var wg sync.WaitGroup
	for ci := 0; ci < campaigns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			got[ci] = make([][]oracle.Result, len(cases))
			for i, c := range cases {
				got[ci][i] = RunEverywhere(cfgs, c, 0)
			}
		}(ci)
	}
	wg.Wait()
	for ci := 0; ci < campaigns; ci++ {
		for i, c := range cases {
			requireSameResults(t, fmt.Sprintf("campaign%d/%s", ci, c.Name), got[ci][i], want[i])
		}
	}
}

// TestParallelWorkgroupDeterminism asserts the fan-out half of the
// engine's central invariant at the device level: with the full defect
// models armed, a launch that fans work-groups out across a worker budget
// must produce byte-identical outcomes and outputs to the fully serial
// executor, on every configuration and optimization level. Run under
// -race this also verifies the parallel path's shared-memory discipline.
func TestParallelWorkgroupDeterminism(t *testing.T) {
	armImmutableAssert(t)
	cfgs := []*device.Config{device.Reference(), device.ByID(1), device.ByID(14), device.ByID(19)}
	seeds := []goldenSeed{
		{generator.ModeBasic, 42},
		{generator.ModeVector, 7},
		{generator.ModeBarrier, 11},
		{generator.ModeAll, 5},
	}
	for _, gs := range seeds {
		// MaxTotalThreads 64 yields multi-group NDRanges, the shape the
		// fan-out actually parallelizes.
		k := generator.Generate(generator.Options{
			Mode: gs.mode, Seed: gs.seed, MaxTotalThreads: 64,
		})
		for _, cfg := range cfgs {
			for _, opt := range []bool{false, true} {
				cr := cfg.Compile(k.Src, opt)
				if cr.Outcome != device.OK {
					continue
				}
				args, result := k.Buffers()
				want := cr.Kernel.Run(k.ND, args, result, device.RunOptions{Workers: 1})
				for _, workers := range []int{2, 8} {
					pargs, presult := k.Buffers()
					got := cr.Kernel.Run(k.ND, pargs, presult, device.RunOptions{Workers: workers})
					label := fmt.Sprintf("%s-%d on %s workers=%d", gs.mode, gs.seed, Key(cfg, opt), workers)
					if got.Outcome != want.Outcome {
						t.Fatalf("%s: outcome %v, want %v", label, got.Outcome, want.Outcome)
					}
					if len(got.Output) != len(want.Output) {
						t.Fatalf("%s: %d outputs, want %d", label, len(got.Output), len(want.Output))
					}
					for j := range want.Output {
						if got.Output[j] != want.Output[j] {
							t.Fatalf("%s: out[%d] = %#x, want %#x", label, j, got.Output[j], want.Output[j])
						}
					}
				}
			}
		}
	}
}

// TestEngineDeterminism pins the two evaluation engines against each
// other across the full defect-model matrix: for every golden case, every
// configuration and both optimization levels, the register VM and the
// reference tree walker must produce byte-identical outcomes, diagnostics
// and buffer contents. Run under -race (CI does) this also verifies the
// VM's shared-memory discipline and, via the armed immutable assertion,
// that lowering and VM execution never write to the shared AST.
func TestEngineDeterminism(t *testing.T) {
	armImmutableAssert(t)
	cfgs := device.All()
	for _, c := range goldenCases(t) {
		fe := device.DefaultFrontCache.Get(c.Src)
		for _, cfg := range cfgs {
			for _, opt := range []bool{false, true} {
				cr := cfg.CompileFrontEnd(fe, opt)
				if cr.Outcome != device.OK {
					continue
				}
				if cr.Kernel.Code == nil {
					t.Fatalf("%s on %s: kernel did not lower to bytecode", c.Name, Key(cfg, opt))
				}
				// Pin fuel/v1 on both runs: this test compares engines, not
				// fuel models, and must pass unchanged under CLFUZZ_FUEL=v2
				// (the fuel-model equivalence is pinned by its own suites).
				args, result := c.Buffers()
				want := cr.Kernel.Run(c.ND, args, result, device.RunOptions{Engine: exec.EngineTree, FuelModel: exec.FuelV1})
				vargs, vresult := c.Buffers()
				got := cr.Kernel.Run(c.ND, vargs, vresult, device.RunOptions{Engine: exec.EngineVM, FuelModel: exec.FuelV1})
				label := fmt.Sprintf("%s on %s", c.Name, Key(cfg, opt))
				if got.Outcome != want.Outcome || got.Msg != want.Msg {
					t.Fatalf("%s: vm (%v, %q), tree (%v, %q)", label, got.Outcome, got.Msg, want.Outcome, want.Msg)
				}
				if len(got.Output) != len(want.Output) {
					t.Fatalf("%s: %d outputs, want %d", label, len(got.Output), len(want.Output))
				}
				for j := range want.Output {
					if got.Output[j] != want.Output[j] {
						t.Fatalf("%s: out[%d] = %#x, want %#x", label, j, got.Output[j], want.Output[j])
					}
				}
			}
		}
	}
}

// TestFrontCacheSharing checks that a campaign actually hits the cache:
// compiling one source across every configuration and level must parse it
// exactly once.
func TestFrontCacheSharing(t *testing.T) {
	fc := device.NewFrontCache(8)
	k := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: 3, MaxTotalThreads: 8})
	for _, cfg := range device.All() {
		for _, opt := range []bool{false, true} {
			fe := fc.Get(k.Src)
			cr := cfg.CompileFrontEnd(fe, opt)
			_ = cr
		}
	}
	hits, misses, size := fc.Stats()
	if misses != 1 || size != 1 {
		t.Fatalf("expected exactly one parse, got hits=%d misses=%d size=%d", hits, misses, size)
	}
	if hits != uint64(len(device.All())*2-1) {
		t.Fatalf("expected %d hits, got %d", len(device.All())*2-1, hits)
	}
}
