package harness

import (
	"fmt"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/device"
	"clfuzz/internal/emi"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
)

// Table5Stats tallies the CLsmith+EMI campaign counters for one
// configuration-level key (§7.4): bad bases (no variant terminates with a
// value), bases inducing wrong code (two variants disagree), bases
// inducing build failures / crashes / timeouts, and stable bases (all
// variants terminate with one uniform value).
type Table5Stats struct {
	BaseFails, W, BF, C, TO, Stable int
}

// Table5 holds the CLsmith+EMI campaign results.
type Table5 struct {
	PerKey map[string]*Table5Stats
	Keys   []string
	Bases  int
	// PruningDefects counts, per pruning-option index in emi.Grid(), the
	// (base, key) pairs where that variant deviated — the §7.4 strategy
	// comparison data (BenchmarkPruningStrategies).
	PruningDefects []int
}

// variantResult is one (variant, configuration, level) observation.
type variantResult struct {
	outcome device.Outcome
	output  []uint64
}

// EMICampaign reproduces §7.4: generate base kernels in ALL mode with 1-5
// EMI blocks, discard bases whose EMI blocks all sit in already-dead code
// (checked by inverting the dead array on the generating configuration),
// derive the 40-variant pruning grid per base, run every variant on every
// above-threshold configuration at both levels, and classify per base.
func EMICampaign(bases int, seed int64, maxThreads int, baseFuel int64) *Table5 {
	cfgs := AboveThresholdConfigs()
	grid := emi.Grid()
	t := &Table5{PerKey: map[string]*Table5Stats{}, PruningDefects: make([]int, len(grid))}
	for _, cfg := range cfgs {
		t.Keys = append(t.Keys, Key(cfg, false), Key(cfg, true))
	}
	for _, k := range t.Keys {
		t.PerKey[k] = &Table5Stats{}
	}
	baseKernels := generateEMIBases(bases, seed, maxThreads, baseFuel)
	t.Bases = len(baseKernels)
	for _, base := range baseKernels {
		prog, err := parser.Parse(base.Src)
		if err != nil {
			continue // cannot happen for generated kernels
		}
		// The variant sources are shared across configurations: parse each
		// one exactly once and fan the front end out to every
		// (configuration, level) job.
		variants := make([]string, len(grid))
		variantFEs := make([]*device.FrontEnd, len(grid))
		for gi, po := range grid {
			po.Seed = base.Seed*41 + int64(gi)
			if vp, err := emi.Prune(prog, po); err == nil {
				variants[gi] = ast.Print(vp)
			}
			// A failed pruning leaves the empty source, whose front end
			// reports a parse error that every configuration counts as a
			// build failure — the behaviour of the pre-cache harness.
			variantFEs[gi] = device.DefaultFrontCache.Get(variants[gi])
		}
		// Run all (variant, config, level) combinations in parallel.
		type job struct {
			gi  int
			cfg *device.Config
			opt bool
		}
		var jobs []job
		for gi := range variants {
			for _, cfg := range cfgs {
				jobs = append(jobs, job{gi, cfg, false}, job{gi, cfg, true})
			}
		}
		// Group (variant, configuration, level) jobs that share a defect
		// model AND a variant source: their runs are deterministic
		// replicas, so one execution serves every configuration with that
		// model (see modelKey). Keying on the printed source rather than
		// the grid index also memoizes results across EMI variants — two
		// prunings that collapse to identical source (common for small
		// bases and aggressive grids) run once, because every variant of a
		// base shares the same launch geometry and argument factory.
		type vKey struct {
			src string
			mk  modelKey
		}
		reps, follower := groupJobs(len(jobs), func(i int) vKey {
			return vKey{variants[jobs[i].gi], jobModelKey(jobs[i].cfg, jobs[i].opt)}
		})
		results := make([]variantResult, len(jobs))
		workers := ExecWorkers(len(reps))
		parallelFor(len(reps), func(ri int) {
			i := reps[ri]
			j := jobs[i]
			c := Case{Src: variants[j.gi], ND: base.ND, Buffers: base.Buffers}
			r := runCase(j.cfg, j.opt, variantFEs[j.gi], c, baseFuel, workers)
			results[i] = variantResult{outcome: r.Outcome, output: r.Output}
		})
		for i, r := range follower {
			cp := results[r]
			if cp.output != nil {
				// Detach the follower's output so a future in-place
				// mutation of one result cannot corrupt its replicas
				// (mirrors runEverywhereFE).
				cp.output = append([]uint64(nil), cp.output...)
			}
			results[i] = cp
		}
		// Classify per configuration-level.
		perKey := map[string][]variantResult{}
		perKeyGrid := map[string][]int{}
		for i, j := range jobs {
			k := Key(j.cfg, j.opt)
			perKey[k] = append(perKey[k], results[i])
			perKeyGrid[k] = append(perKeyGrid[k], j.gi)
		}
		for _, k := range t.Keys {
			vs := perKey[k]
			st := t.PerKey[k]
			var first []uint64
			haveOK, wrong, bf, crash, to := false, false, false, false, false
			for _, v := range vs {
				switch v.outcome {
				case device.OK:
					if !haveOK {
						first, haveOK = v.output, true
					} else if !oracle.Equal(first, v.output) {
						wrong = true
					}
				case device.BuildFailure:
					bf = true
				case device.Crash:
					crash = true
				case device.Timeout:
					to = true
				}
			}
			if !haveOK {
				st.BaseFails++
				continue
			}
			if wrong {
				st.W++
				// Strategy attribution: count the grid combinations whose
				// variant deviated from the first observed output.
				majority := majorityOutput(vs)
				for i, v := range vs {
					if v.outcome == device.OK && !oracle.Equal(majority, v.output) {
						t.PruningDefects[perKeyGrid[k][i]]++
					}
				}
			}
			if bf {
				st.BF++
			}
			if crash {
				st.C++
			}
			if to {
				st.TO++
			}
			if haveOK && !wrong && !bf && !crash && !to {
				st.Stable++
			}
		}
	}
	return t
}

func majorityOutput(vs []variantResult) []uint64 {
	best := []uint64(nil)
	bestN := 0
	for i, v := range vs {
		if v.outcome != device.OK {
			continue
		}
		n := 0
		for _, w := range vs {
			if w.outcome == device.OK && oracle.Equal(v.output, w.output) {
				n++
			}
		}
		if n > bestN {
			best, bestN = vs[i].output, n
		}
	}
	return best
}

// generateEMIBases produces base kernels per the §7.4 protocol: ALL mode
// with 1-5 EMI blocks, accepted on config 1+, and kept only if inverting
// the dead array changes the result (otherwise every EMI block was placed
// at an already-dead point).
func generateEMIBases(n int, seed int64, maxThreads int, baseFuel int64) []*generator.Kernel {
	gen1 := device.ByID(1)
	var out []*generator.Kernel
	next := seed
	for len(out) < n {
		batch := n - len(out) + 4
		cands := make([]*generator.Kernel, batch)
		for i := range cands {
			cands[i] = generator.Generate(generator.Options{
				Mode: generator.ModeAll, Seed: next, MaxTotalThreads: maxThreads,
				EMIBlocks: 1 + int(next%5),
			})
			next++
		}
		keep := make([]bool, batch)
		workers := ExecWorkers(batch)
		parallelFor(batch, func(i int) {
			k := cands[i]
			cr := gen1.Compile(k.Src, true)
			if cr.Outcome != device.OK {
				return
			}
			args, result := k.Buffers()
			rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{BaseFuel: baseFuel, Workers: workers})
			if rr.Outcome != device.OK {
				return
			}
			iargs, iresult := k.InvertedDeadBuffers()
			ir := cr.Kernel.Run(k.ND, iargs, iresult, device.RunOptions{BaseFuel: baseFuel, Workers: workers})
			if ir.Outcome != device.OK {
				// Inversion makes the blocks live; divergence in outcome
				// still proves the blocks are reachable when live.
				keep[i] = true
				return
			}
			keep[i] = !oracle.Equal(rr.Output, ir.Output)
		})
		for i, ok := range keep {
			if ok && len(out) < n {
				out = append(out, cands[i])
			}
		}
	}
	return out
}

// RenderTable5 formats the campaign like the paper's Table 5.
func RenderTable5(t *Table5) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. CLsmith+EMI results (%d base programs, %d variants each)\n",
		t.Bases, len(emi.Grid()))
	fmt.Fprintf(&b, "%-12s", "")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%7s", k)
	}
	b.WriteByte('\n')
	rows := []struct {
		label string
		pick  func(*Table5Stats) int
	}{
		{"base fails", func(s *Table5Stats) int { return s.BaseFails }},
		{"w", func(s *Table5Stats) int { return s.W }},
		{"bf", func(s *Table5Stats) int { return s.BF }},
		{"c", func(s *Table5Stats) int { return s.C }},
		{"to", func(s *Table5Stats) int { return s.TO }},
		{"stable", func(s *Table5Stats) int { return s.Stable }},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s", row.label)
		for _, k := range t.Keys {
			fmt.Fprintf(&b, "%7d", row.pick(t.PerKey[k]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPruningComparison formats the §7.4 strategy-effectiveness data:
// defect-inducing variant counts aggregated by each pruning probability.
func RenderPruningComparison(t *Table5) string {
	grid := emi.Grid()
	type agg struct{ leaf, compound, lift float64 }
	var b strings.Builder
	b.WriteString("EMI pruning strategy comparison (defect-inducing variants by strategy weight)\n")
	sum := func(sel func(emi.PruneOpts) float64) float64 {
		total, weight := 0.0, 0.0
		for i, po := range grid {
			total += sel(po) * float64(t.PruningDefects[i])
			weight += sel(po)
		}
		if weight == 0 {
			return 0
		}
		return total / weight
	}
	fmt.Fprintf(&b, "%-10s %10.2f\n", "leaf", sum(func(p emi.PruneOpts) float64 { return p.PLeaf }))
	fmt.Fprintf(&b, "%-10s %10.2f\n", "compound", sum(func(p emi.PruneOpts) float64 { return p.PCompound }))
	fmt.Fprintf(&b, "%-10s %10.2f\n", "lift", sum(func(p emi.PruneOpts) float64 { return p.PLift }))
	return b.String()
}
