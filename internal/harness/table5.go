package harness

import (
	"context"
	"fmt"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/emi"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
)

// Table5Stats tallies the CLsmith+EMI campaign counters for one
// configuration-level key (§7.4): bad bases (no variant terminates with a
// value), bases inducing wrong code (two variants disagree), bases
// inducing build failures / crashes / timeouts, and stable bases (all
// variants terminate with one uniform value).
type Table5Stats struct {
	BaseFails, W, BF, C, TO, Stable int
}

// Table5 holds the CLsmith+EMI campaign results.
type Table5 struct {
	PerKey map[string]*Table5Stats
	Keys   []string
	Bases  int
	// PruningDefects counts, per pruning-option index in emi.Grid(), the
	// (base, key) pairs where that variant deviated — the §7.4 strategy
	// comparison data (BenchmarkPruningStrategies).
	PruningDefects []int
}

// t5Record is one base's shard record: its per-key contribution to the
// Table 5 counters (0/1 flags) plus the per-grid-index defect counts.
type t5Record struct {
	PerKey  map[string]Table5Stats `json:"per_key"`
	Pruning []int                  `json:"pruning"`
}

// table5Record derives base i's 40-variant pruning grid, runs every
// (variant, configuration, level) unit through the campaign engine —
// units sharing a printed source and a defect model execute once, and
// text shared with other bases or the acceptance runs hits the result
// cache — and classifies the base.
func table5Record(ctx context.Context, eng *campaign.Engine, cfgs []*device.Config, keys []string, base *generator.Kernel, baseFuel int64, width int) t5Record {
	grid := emi.Grid()
	rec := t5Record{PerKey: map[string]Table5Stats{}, Pruning: make([]int, len(grid))}
	prog, err := parser.Parse(base.Src)
	if err != nil {
		return rec // cannot happen for generated kernels
	}
	// The variant sources are shared across configurations: parse each
	// one exactly once and fan the front end out to every
	// (configuration, level) unit. A failed pruning leaves the empty
	// source, whose front end reports a parse error that every
	// configuration counts as a build failure — the behaviour of the
	// pre-cache harness.
	variants := make([]string, len(grid))
	for gi, po := range grid {
		po.Seed = base.Seed*41 + int64(gi)
		if vp, err := emi.Prune(prog, po); err == nil {
			variants[gi] = ast.Print(vp)
		}
	}
	var units []campaign.Unit
	for gi := range variants {
		for _, cfg := range cfgs {
			units = append(units,
				campaign.Unit{Src: gi, Cfg: cfg, Opt: false},
				campaign.Unit{Src: gi, Cfg: cfg, Opt: true})
		}
	}
	results := eng.RunMatrix(campaign.Matrix{
		Name:     fmt.Sprintf("emi-base-%d", base.Seed),
		Sources:  variants,
		ND:       base.ND,
		Buffers:  func(int) (exec.Args, *exec.Buffer) { return base.Buffers() },
		BaseFuel: baseFuel,
		Units:    units,
		Ctx:      ctx,
	}, width)
	// Classify per configuration-level.
	perKey := map[string][]campaign.UnitResult{}
	perKeyGrid := map[string][]int{}
	for i, u := range units {
		k := Key(u.Cfg, u.Opt)
		perKey[k] = append(perKey[k], results[i])
		perKeyGrid[k] = append(perKeyGrid[k], u.Src)
	}
	for _, k := range keys {
		vs := perKey[k]
		var st Table5Stats
		var first []uint64
		haveOK, wrong, bf, crash, to := false, false, false, false, false
		for _, v := range vs {
			switch v.Outcome {
			case device.OK:
				if !haveOK {
					first, haveOK = v.Output, true
				} else if !oracle.Equal(first, v.Output) {
					wrong = true
				}
			case device.BuildFailure:
				bf = true
			case device.Crash:
				crash = true
			case device.Timeout:
				to = true
			}
		}
		if !haveOK {
			st.BaseFails++
			rec.PerKey[k] = st
			continue
		}
		if wrong {
			st.W++
			// Strategy attribution: count the grid combinations whose
			// variant deviated from the majority observed output.
			majority := majorityOutput(vs)
			for i, v := range vs {
				if v.Outcome == device.OK && !oracle.Equal(majority, v.Output) {
					rec.Pruning[perKeyGrid[k][i]]++
				}
			}
		}
		if bf {
			st.BF++
		}
		if crash {
			st.C++
		}
		if to {
			st.TO++
		}
		if haveOK && !wrong && !bf && !crash && !to {
			st.Stable++
		}
		rec.PerKey[k] = st
	}
	return rec
}

// table5Failed synthesizes the record of a quarantined base: every
// configuration-level key counts it as crash-inducing.
func table5Failed(keys []string) t5Record {
	rec := t5Record{PerKey: map[string]Table5Stats{}, Pruning: make([]int, len(emi.Grid()))}
	for _, k := range keys {
		rec.PerKey[k] = Table5Stats{C: 1}
	}
	return rec
}

// foldTable5 sums the per-base records (in base order) into the table.
func foldTable5(keys []string, bases int, records []t5Record) *Table5 {
	grid := emi.Grid()
	t := &Table5{PerKey: map[string]*Table5Stats{}, Keys: keys, Bases: bases, PruningDefects: make([]int, len(grid))}
	for _, k := range keys {
		t.PerKey[k] = &Table5Stats{}
	}
	for _, rec := range records {
		for _, k := range keys {
			st, ok := rec.PerKey[k]
			if !ok {
				continue
			}
			agg := t.PerKey[k]
			agg.BaseFails += st.BaseFails
			agg.W += st.W
			agg.BF += st.BF
			agg.C += st.C
			agg.TO += st.TO
			agg.Stable += st.Stable
		}
		for gi, n := range rec.Pruning {
			if gi < len(t.PruningDefects) {
				t.PruningDefects[gi] += n
			}
		}
	}
	return t
}

func table5Keys(cfgs []*device.Config) []string {
	var keys []string
	for _, cfg := range cfgs {
		keys = append(keys, Key(cfg, false), Key(cfg, true))
	}
	return keys
}

// EMICampaign reproduces §7.4: generate base kernels in ALL mode with 1-5
// EMI blocks, discard bases whose EMI blocks all sit in already-dead code
// (checked by inverting the dead array on the generating configuration),
// derive the 40-variant pruning grid per base, run every variant on every
// above-threshold configuration at both levels, and classify per base.
func EMICampaign(bases int, seed int64, maxThreads int, baseFuel int64) *Table5 {
	return emiCampaign(campaign.Default, bases, seed, maxThreads, baseFuel)
}

func emiCampaign(eng *campaign.Engine, bases int, seed int64, maxThreads int, baseFuel int64) *Table5 {
	cfgs := AboveThresholdConfigs()
	keys := table5Keys(cfgs)
	baseKernels := generateEMIBases(eng, bases, seed, maxThreads, baseFuel)
	records := make([]t5Record, len(baseKernels))
	campaign.Stream(nil, len(baseKernels), func(i, _ int) t5Record {
		return table5Record(nil, eng, cfgs, keys, baseKernels[i], baseFuel, len(baseKernels))
	}, func(i int, r t5Record) { records[i] = r })
	return foldTable5(keys, len(baseKernels), records)
}

func majorityOutput(vs []campaign.UnitResult) []uint64 {
	best := []uint64(nil)
	bestN := 0
	for i, v := range vs {
		if v.Outcome != device.OK {
			continue
		}
		n := 0
		for _, w := range vs {
			if w.Outcome == device.OK && oracle.Equal(v.Output, w.Output) {
				n++
			}
		}
		if n > bestN {
			best, bestN = vs[i].Output, n
		}
	}
	return best
}

// generateEMIBases produces base kernels per the §7.4 protocol: ALL mode
// with 1-5 EMI blocks, accepted on config 1+, and kept only if inverting
// the dead array changes the result (otherwise every EMI block was placed
// at an already-dead point). The straight acceptance run goes through the
// campaign engine, so the campaign's unpruned variants reuse it via the
// result cache.
func generateEMIBases(eng *campaign.Engine, n int, seed int64, maxThreads int, baseFuel int64) []*generator.Kernel {
	gen1 := device.ByID(1)
	var out []*generator.Kernel
	next := seed
	for len(out) < n {
		batch := n - len(out) + 4
		cands := make([]*generator.Kernel, batch)
		for i := range cands {
			cands[i] = generator.Generate(generator.Options{
				Mode: generator.ModeAll, Seed: next, MaxTotalThreads: maxThreads,
				EMIBlocks: 1 + int(next%5),
			})
			next++
		}
		campaign.Stream(nil, batch, func(i, launch int) bool {
			k := cands[i]
			opts := campaign.LaunchOptions{BaseFuel: baseFuel, Workers: launch}
			rr := eng.RunCase(gen1, true, CaseFromKernel(k, ""), opts)
			if rr.Outcome != device.OK {
				return false
			}
			ir := eng.RunCase(gen1, true, Case{Src: k.Src, ND: k.ND, Buffers: k.InvertedDeadBuffers}, opts)
			if ir.Outcome != device.OK {
				// Inversion makes the blocks live; divergence in outcome
				// still proves the blocks are reachable when live.
				return true
			}
			return !oracle.Equal(rr.Output, ir.Output)
		}, func(i int, ok bool) {
			if ok && len(out) < n {
				out = append(out, cands[i])
			}
		})
	}
	return out
}

// RenderTable5 formats the campaign like the paper's Table 5.
func RenderTable5(t *Table5) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. CLsmith+EMI results (%d base programs, %d variants each)\n",
		t.Bases, len(emi.Grid()))
	fmt.Fprintf(&b, "%-12s", "")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%7s", k)
	}
	b.WriteByte('\n')
	rows := []struct {
		label string
		pick  func(*Table5Stats) int
	}{
		{"base fails", func(s *Table5Stats) int { return s.BaseFails }},
		{"w", func(s *Table5Stats) int { return s.W }},
		{"bf", func(s *Table5Stats) int { return s.BF }},
		{"c", func(s *Table5Stats) int { return s.C }},
		{"to", func(s *Table5Stats) int { return s.TO }},
		{"stable", func(s *Table5Stats) int { return s.Stable }},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s", row.label)
		for _, k := range t.Keys {
			fmt.Fprintf(&b, "%7d", row.pick(t.PerKey[k]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPruningComparison formats the §7.4 strategy-effectiveness data:
// defect-inducing variant counts aggregated by each pruning probability.
func RenderPruningComparison(t *Table5) string {
	grid := emi.Grid()
	var b strings.Builder
	b.WriteString("EMI pruning strategy comparison (defect-inducing variants by strategy weight)\n")
	sum := func(sel func(emi.PruneOpts) float64) float64 {
		total, weight := 0.0, 0.0
		for i, po := range grid {
			total += sel(po) * float64(t.PruningDefects[i])
			weight += sel(po)
		}
		if weight == 0 {
			return 0
		}
		return total / weight
	}
	fmt.Fprintf(&b, "%-10s %10.2f\n", "leaf", sum(func(p emi.PruneOpts) float64 { return p.PLeaf }))
	fmt.Fprintf(&b, "%-10s %10.2f\n", "compound", sum(func(p emi.PruneOpts) float64 { return p.PCompound }))
	fmt.Fprintf(&b, "%-10s %10.2f\n", "lift", sum(func(p emi.PruneOpts) float64 { return p.PLift }))
	return b.String()
}
