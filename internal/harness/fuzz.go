package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"clfuzz/internal/campaign"
	"clfuzz/internal/corpus"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
)

// FuzzTable is the Params.Table value of the coverage-guided fuzzing
// campaign (cltables -fuzz) — not a paper table, but it rides the same
// shard-record schema, so fleet runs merge coverage maps exactly like
// table results.
const FuzzTable = 6

// fuzzCampaign adapts the feedback loop to the shard driver: Chains
// independent fuzzing chains, Scale steps each, interleaved round-robin
// so case i is step i/Chains of chain i%Chains. A chain computes its
// steps strictly in order (lazily, under its lock), so any shard
// partition — including one that owns only part of a chain and
// recomputes the prefix — produces the identical record stream.
func fuzzCampaign(eng *campaign.Engine, p Params) *shardCampaign {
	nch := p.chainCount()
	cases := nch * p.Scale
	chains := sync.OnceValue(func() []*corpus.Chain { return FuzzChains(eng, p) })
	return &shardCampaign{
		cases: cases,
		run: func(ctx context.Context, i int) any {
			return chains()[i%nch].Step(ctx, i/nch)
		},
		failed: func() any {
			return corpus.StepRecord{Origin: corpus.OriginQuar, Parent: -1, Outcome: device.Crash.String()}
		},
		render: func(records []json.RawMessage) (string, error) {
			recs, err := decodeRecords[corpus.StepRecord](records)
			if err != nil {
				return "", err
			}
			return RenderFuzz(p, recs), nil
		},
	}
}

// FuzzChains builds the campaign's fuzzing chains from Params — the one
// place chain configuration is derived, so cltables -fuzz and the clfuzz
// loop binary fuzz identically for identical parameters.
func FuzzChains(eng *campaign.Engine, p Params) []*corpus.Chain {
	cfgs := AboveThresholdConfigs()
	out := make([]*corpus.Chain, p.chainCount())
	for ci := range out {
		cc := corpus.ChainConfig{
			Index:    ci,
			Seed:     p.Seed + int64(ci)*1000003,
			Threads:  p.Threads,
			BaseFuel: p.BaseFuel,
			// Coverage is defined on the defect-free reference
			// interpreter, so a simulated compiler defect never
			// truncates a step's footprint. Crash outcomes on the
			// reference are mutants whose UB (e.g. an operator swap in
			// an array-index expression) the device model contains; CI
			// gates on quarantine records (a worker actually dying),
			// not on contained outcomes. The defective configurations
			// run as differential peers.
			Ref:  device.Reference(),
			Diff: fuzzDiffConfigs(cfgs),
		}
		if p.Fresh {
			// Pure-random baseline: a step never mutates (Float64() < 1
			// always), so the corpus is dead weight and coverage feedback
			// has no effect on generation.
			cc.FreshProb = 1
		}
		out[ci] = corpus.NewChain(eng, cc)
	}
	return out
}

// fuzzDiffConfigs picks a small deterministic differential set beyond
// the reference configuration: the second configuration and one from the
// middle of the list.
func fuzzDiffConfigs(cfgs []*device.Config) []*device.Config {
	var out []*device.Config
	if len(cfgs) > 1 {
		out = append(out, cfgs[1])
	}
	if len(cfgs) > 3 {
		out = append(out, cfgs[len(cfgs)/2])
	}
	return out
}

// FuzzFold is the aggregate state folded from a fuzz campaign's record
// stream: the merged coverage map (the union of every step's novel-edge
// delta — byte-identical whether the records came from one process or a
// merged fleet), corpus sizes, and outcome tallies.
type FuzzFold struct {
	Cover      *exec.CoverMap
	Steps      int
	CorpusLen  map[int]int // chain → corpus size after its last step
	Origins    map[string]int
	Outcomes   map[string]int
	Mismatches int
	// Curve holds the cumulative distinct-edge count after each case, in
	// case order — the coverage-over-time series clbench snapshots.
	Curve []int
}

// foldFuzz folds step records (complete, in case order).
func foldFuzz(recs []corpus.StepRecord) *FuzzFold {
	f := &FuzzFold{
		Cover:     new(exec.CoverMap),
		Steps:     len(recs),
		CorpusLen: map[int]int{},
		Origins:   map[string]int{},
		Outcomes:  map[string]int{},
	}
	total := 0
	var sites [exec.CoverNumSites]uint64
	for _, r := range recs {
		total += f.Cover.AddEdges(r.Edges)
		for i, s := range r.Sites {
			if i < len(sites) {
				sites[i] += s
			}
		}
		f.CorpusLen[r.Chain] = r.Corpus
		f.Origins[r.Origin]++
		f.Outcomes[r.Outcome]++
		if r.Mismatch {
			f.Mismatches++
		}
		f.Curve = append(f.Curve, total)
	}
	f.Cover.AddSites(sites)
	return f
}

// CorpusTotal sums the per-chain corpus sizes.
func (f *FuzzFold) CorpusTotal() int {
	n := 0
	for _, c := range f.CorpusLen {
		n += c
	}
	return n
}

// RenderFuzz renders the fuzz campaign report: a coverage-over-time
// table plus origin/outcome/defect-site tallies. The output is a pure
// function of the record stream, so a merged fleet run renders byte-
// identically to the direct run.
func RenderFuzz(p Params, recs []corpus.StepRecord) string {
	f := foldFuzz(recs)
	var b strings.Builder
	mode := ""
	if p.Fresh {
		mode = ", pure-random baseline"
	}
	fmt.Fprintf(&b, "Coverage-guided fuzzing campaign (%d chains x %d steps, seed %d%s)\n",
		p.chainCount(), p.Scale, p.Seed, mode)
	fmt.Fprintf(&b, "%8s %8s %8s %10s\n", "cases", "edges", "corpus", "mismatches")
	every := len(recs) / 10
	if every < 1 {
		every = 1
	}
	corpusAt := map[int]int{}
	mismatches := 0
	for i, r := range recs {
		corpusAt[r.Chain] = r.Corpus
		if r.Mismatch {
			mismatches++
		}
		if (i+1)%every == 0 || i == len(recs)-1 {
			csum := 0
			for _, c := range corpusAt {
				csum += c
			}
			fmt.Fprintf(&b, "%8d %8d %8d %10d\n", i+1, f.Curve[i], csum, mismatches)
		}
	}
	fmt.Fprintf(&b, "origins:")
	names := make([]string, 0, len(f.Origins))
	for o := range f.Origins {
		names = append(names, o)
	}
	sort.Strings(names)
	for _, o := range names {
		fmt.Fprintf(&b, " %s=%d", o, f.Origins[o])
	}
	b.WriteString("\noutcomes:")
	for _, o := range []string{"ok", "bf", "c", "to", "cancel"} {
		if f.Outcomes[o] > 0 {
			fmt.Fprintf(&b, " %s=%d", o, f.Outcomes[o])
		}
	}
	sites := f.Cover.SiteHits()
	fmt.Fprintf(&b, "\ndefect sites: deref-store=%d arrow-store=%d dead-loop=%d\n",
		sites[exec.CoverSiteDerefStore], sites[exec.CoverSiteArrowStore], sites[exec.CoverSiteDeadLoop])
	fmt.Fprintf(&b, "distinct VM edges: %d, corpus members: %d, wrong-code mismatches: %d\n",
		f.Cover.Count(), f.CorpusTotal(), f.Mismatches)
	return b.String()
}

// FoldFuzzRecords folds raw fuzz records (as read from shard files) for
// programmatic consumers (clbench's coverage-over-time series).
func FoldFuzzRecords(records []json.RawMessage) (*FuzzFold, error) {
	recs, err := decodeRecords[corpus.StepRecord](records)
	if err != nil {
		return nil, err
	}
	return foldFuzz(recs), nil
}

// RunFuzzFold runs the fuzz campaign described by p to completion in
// this process and folds its record stream — clbench's entry point for
// the guided-vs-random coverage-over-time comparison.
func RunFuzzFold(ctx context.Context, p Params) (*FuzzFold, error) {
	sf, err := RunShardOpts(ctx, p, 0, 1, ShardRunOptions{})
	if err != nil {
		return nil, err
	}
	raw := make([]json.RawMessage, len(sf.Records))
	for i, r := range sf.Records {
		raw[i] = r.Data
	}
	return FoldFuzzRecords(raw)
}
