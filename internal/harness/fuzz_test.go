package harness

import (
	"context"
	"encoding/json"
	"testing"

	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
)

func fuzzEngine() *campaign.Engine {
	return &campaign.Engine{Front: device.DefaultFrontCache, Results: campaign.NewResultCache(4096)}
}

var fuzzTestParams = Params{Table: FuzzTable, Scale: 4, Seed: 9, Threads: 32, Chains: 2, Fuel: DefaultFuelParam()}

// TestFuzzCampaignDeterminism: two independent runs of the fuzz campaign
// — fresh campaign engines, so no result-cache state crosses over —
// produce byte-identical record streams, corpus hashes and coverage
// maps. Run under -race (CI does) with the immutable-program assertion
// armed, this also pins the chain locking discipline while
// campaign.Stream fans the interleaved cases over workers.
func TestFuzzCampaignDeterminism(t *testing.T) {
	armImmutableAssert(t)
	ctx := context.Background()
	run := func() ([]byte, []uint64, [][]uint32) {
		eng := fuzzEngine()
		chains := FuzzChains(eng, fuzzTestParams)
		sf, err := runShard(ctx, eng, fuzzTestParams, 0, 1, ShardRunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// runShard built its own chains; replay the identical sequence on
		// this replica (the shared result cache makes it cheap) to expose
		// the corpus and coverage state the records came from.
		var hashes []uint64
		var edges [][]uint32
		for _, c := range chains {
			c.Step(ctx, fuzzTestParams.Scale-1)
			hashes = append(hashes, c.CorpusHash())
			edges = append(edges, c.Cover().Edges())
		}
		raw, err := json.Marshal(sf)
		if err != nil {
			t.Fatal(err)
		}
		return raw, hashes, edges
	}
	rawA, hashA, edgesA := run()
	rawB, hashB, edgesB := run()
	if string(rawA) != string(rawB) {
		t.Fatalf("record streams differ:\n%s\nvs\n%s", rawA, rawB)
	}
	for ci := range hashA {
		if hashA[ci] != hashB[ci] {
			t.Fatalf("chain %d corpus hash %#x vs %#x", ci, hashA[ci], hashB[ci])
		}
		if len(edgesA[ci]) != len(edgesB[ci]) {
			t.Fatalf("chain %d coverage %d vs %d edges", ci, len(edgesA[ci]), len(edgesB[ci]))
		}
		for i := range edgesA[ci] {
			if edgesA[ci][i] != edgesB[ci][i] {
				t.Fatalf("chain %d edge[%d] = %d vs %d", ci, i, edgesA[ci][i], edgesB[ci][i])
			}
		}
	}
	if len(edgesA) > 0 && len(edgesA[0]) == 0 {
		t.Fatal("VM campaign collected no coverage")
	}
}

// TestFuzzShardMergeMatchesDirect: the fuzz campaign sharded two ways
// and merged renders byte-identically to the direct single-process run —
// including the coverage map, which the render folds from the records'
// novel-edge deltas.
func TestFuzzShardMergeMatchesDirect(t *testing.T) {
	armImmutableAssert(t)
	ctx := context.Background()
	direct, err := renderCampaign(ctx, fuzzEngine(), fuzzTestParams)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ShardFile
	for shard := 0; shard < 2; shard++ {
		sf, err := runShard(ctx, fuzzEngine(), fuzzTestParams, shard, 2, ShardRunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, sf)
	}
	merged, err := mergeShards(fuzzEngine(), files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged != direct {
		t.Fatalf("merged fleet output differs from direct run:\n--- direct ---\n%s--- merged ---\n%s", direct, merged)
	}
}

// TestFuzzTreeEngineFallback: the tree engine collects no coverage, so
// the feedback loop degrades to pure swarm-random generation — zero
// corpus growth, zero edges — but must complete without panicking, and
// deterministically.
func TestFuzzTreeEngineFallback(t *testing.T) {
	armImmutableAssert(t)
	saved := device.DefaultEngine
	device.DefaultEngine = exec.EngineTree
	t.Cleanup(func() { device.DefaultEngine = saved })
	ctx := context.Background()
	p := fuzzTestParams
	p.Scale = 2
	run := func() string {
		out, err := renderCampaign(ctx, fuzzEngine(), p)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("tree-engine fuzz runs differ:\n%s\nvs\n%s", a, b)
	}
	eng := fuzzEngine()
	for _, c := range FuzzChains(eng, p) {
		c.Step(ctx, p.Scale-1)
		if c.Cover().Count() != 0 {
			t.Fatalf("tree engine collected %d edges", c.Cover().Count())
		}
		if c.CorpusLen() != 0 {
			t.Fatalf("tree engine grew the corpus to %d", c.CorpusLen())
		}
	}
}

// TestTableCoverageNeutrality: the paper-table campaigns render
// byte-identically with engine-wide coverage collection on or off — the
// Cover hook is observation-only — while the covered run does actually
// accumulate coverage.
func TestTableCoverageNeutrality(t *testing.T) {
	armImmutableAssert(t)
	ctx := context.Background()
	tables := []Params{
		{Table: 1, Scale: 1, Seed: 3, Threads: 32, Fuel: DefaultFuelParam()},
		{Table: 4, Scale: 1, Seed: 5, Threads: 32, Fuel: DefaultFuelParam()},
		{Table: 5, Scale: 1, Seed: 7, Threads: 32, Fuel: DefaultFuelParam()},
	}
	if testing.Short() {
		tables = tables[1:2]
	}
	for _, p := range tables {
		plain, err := renderCampaign(ctx, fuzzEngine(), p)
		if err != nil {
			t.Fatalf("table %d: %v", p.Table, err)
		}
		covEng := fuzzEngine()
		covEng.Cover = new(exec.CoverMap)
		covered, err := renderCampaign(ctx, covEng, p)
		if err != nil {
			t.Fatalf("table %d covered: %v", p.Table, err)
		}
		if plain != covered {
			t.Fatalf("table %d output changed under coverage:\n--- off ---\n%s--- on ---\n%s", p.Table, plain, covered)
		}
		if covEng.Cover.Count() == 0 {
			t.Fatalf("table %d covered run accumulated no edges", p.Table)
		}
	}
}
