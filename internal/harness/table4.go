package harness

import (
	"fmt"
	"strings"

	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// ModeStats tallies the Table 4 outcome counters for one (mode,
// configuration±) cell: wrong code, build failures, crashes, timeouts, and
// results not deemed wrong.
type ModeStats struct {
	W, BF, C, TO, OK int
}

// WrongPct is the paper's w% metric: the percentage of non-{bf,c,to}
// results that are wrong code results (§7.3).
func (s ModeStats) WrongPct() float64 {
	den := s.W + s.OK
	if den == 0 {
		return 0
	}
	return 100 * float64(s.W) / float64(den)
}

// Table4 holds the intensive CLsmith campaign results: per mode, per
// configuration-level key.
type Table4 struct {
	PerMode map[generator.Mode]map[string]*ModeStats
	Tests   map[generator.Mode]int
	Keys    []string
}

// AboveThresholdConfigs returns the configurations the paper subjected to
// intensive testing (Table 1 final column).
func AboveThresholdConfigs() []*device.Config {
	var out []*device.Config
	for _, c := range device.All() {
		if c.PaperAboveThreshold {
			out = append(out, c)
		}
	}
	return out
}

// CLsmithCampaign reproduces §7.3: for each mode, generate perMode kernels
// accepted by the generating configuration (1+), run them across the
// above-threshold configurations at both optimization levels, and tally
// outcomes with majority-vote wrong-code classification.
func CLsmithCampaign(perMode int, seed int64, maxThreads int, baseFuel int64) *Table4 {
	cfgs := AboveThresholdConfigs()
	t := &Table4{
		PerMode: map[generator.Mode]map[string]*ModeStats{},
		Tests:   map[generator.Mode]int{},
	}
	for _, cfg := range cfgs {
		t.Keys = append(t.Keys, Key(cfg, false), Key(cfg, true))
	}
	for mi, mode := range generator.Modes {
		cell := map[string]*ModeStats{}
		for _, k := range t.Keys {
			cell[k] = &ModeStats{}
		}
		kernels := GenerateAccepted(mode, perMode, seed+int64(mi)*1000003, maxThreads, nil, baseFuel)
		t.Tests[mode] = len(kernels)
		type kernelResults struct{ rs []oracle.Result }
		all := make([]kernelResults, len(kernels))
		parallelFor(len(kernels), func(i int) {
			c := CaseFromKernel(kernels[i], fmt.Sprintf("%s-%d", mode, i))
			fe := device.DefaultFrontCache.Get(c.Src)
			all[i] = kernelResults{rs: runEverywhereFE(cfgs, fe, c, baseFuel, len(kernels))}
		})
		for _, kr := range all {
			wrong := map[string]bool{}
			for _, k := range oracle.WrongCode(kr.rs) {
				wrong[k] = true
			}
			for _, r := range kr.rs {
				st := cell[r.Key]
				if st == nil {
					continue
				}
				switch r.Outcome {
				case device.BuildFailure:
					st.BF++
				case device.Crash:
					st.C++
				case device.Timeout:
					st.TO++
				case device.OK:
					if wrong[r.Key] {
						st.W++
					} else {
						st.OK++
					}
				}
			}
		}
		t.PerMode[mode] = cell
	}
	return t
}

// RenderTable4 formats the campaign like the paper's Table 4.
func RenderTable4(t *Table4) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Configurations above the reliability threshold on CLsmith-generated tests\n")
	fmt.Fprintf(&b, "%-22s %-4s", "Mode (tests)", "")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%8s", k)
	}
	b.WriteByte('\n')
	for _, mode := range generator.Modes {
		cell := t.PerMode[mode]
		rows := []struct {
			label string
			pick  func(*ModeStats) string
		}{
			{"w", func(s *ModeStats) string { return fmt.Sprintf("%d", s.W) }},
			{"bf", func(s *ModeStats) string { return fmt.Sprintf("%d", s.BF) }},
			{"c", func(s *ModeStats) string { return fmt.Sprintf("%d", s.C) }},
			{"to", func(s *ModeStats) string { return fmt.Sprintf("%d", s.TO) }},
			{"ok", func(s *ModeStats) string { return fmt.Sprintf("%d", s.OK) }},
			{"w%", func(s *ModeStats) string { return fmt.Sprintf("%.1f", s.WrongPct()) }},
		}
		for ri, row := range rows {
			if ri == 0 {
				fmt.Fprintf(&b, "%-22s %-4s", fmt.Sprintf("%s (%d)", mode, t.Tests[mode]), row.label)
			} else {
				fmt.Fprintf(&b, "%-22s %-4s", "", row.label)
			}
			for _, k := range t.Keys {
				fmt.Fprintf(&b, "%8s", row.pick(cell[k]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
