package harness

import (
	"context"
	"fmt"
	"strings"

	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// ModeStats tallies the Table 4 outcome counters for one (mode,
// configuration±) cell: wrong code, build failures, crashes, timeouts, and
// results not deemed wrong.
type ModeStats struct {
	W, BF, C, TO, OK int
}

// WrongPct is the paper's w% metric: the percentage of non-{bf,c,to}
// results that are wrong code results (§7.3).
func (s ModeStats) WrongPct() float64 {
	den := s.W + s.OK
	if den == 0 {
		return 0
	}
	return 100 * float64(s.W) / float64(den)
}

// Table4 holds the intensive CLsmith campaign results: per mode, per
// configuration-level key.
type Table4 struct {
	PerMode map[generator.Mode]map[string]*ModeStats
	Tests   map[generator.Mode]int
	Keys    []string
}

// AboveThresholdConfigs returns the configurations the paper subjected to
// intensive testing (Table 1 final column).
func AboveThresholdConfigs() []*device.Config {
	var out []*device.Config
	for _, c := range device.All() {
		if c.PaperAboveThreshold {
			out = append(out, c)
		}
	}
	return out
}

// t4Record is one kernel's shard record: its observations over the
// above-threshold configuration matrix.
type t4Record struct {
	Results []t1Result `json:"results"`
}

// table4Kernels regenerates the campaign's accepted kernel list, one
// slice per mode, deterministically from the campaign parameters. Every
// shard recomputes it (the acceptance filter is execution-backed and so
// must run everywhere), but the result cache makes the campaign proper
// reuse the acceptance runs.
func table4Kernels(eng *campaign.Engine, perMode int, seed int64, maxThreads int, baseFuel int64) [][]*generator.Kernel {
	out := make([][]*generator.Kernel, len(generator.Modes))
	for mi, mode := range generator.Modes {
		out[mi] = generateAccepted(eng, mode, perMode, seed+int64(mi)*1000003, maxThreads, nil, baseFuel)
	}
	return out
}

// table4Record runs case i (mode-major over the accepted kernels).
func table4Record(ctx context.Context, eng *campaign.Engine, cfgs []*device.Config, kernels [][]*generator.Kernel, perMode int, baseFuel int64, i, width int) t4Record {
	mi, ki := i/perMode, i%perMode
	k := kernels[mi][ki]
	c := CaseFromKernel(k, fmt.Sprintf("%s-%d", generator.Modes[mi], ki))
	rs := eng.RunMatrix(matrixFor(ctx, cfgs, c, baseFuel), width)
	rec := t4Record{Results: make([]t1Result, len(rs))}
	for j, r := range rs {
		rec.Results[j] = t1Result{Key: r.Key, Outcome: int(r.Outcome), Output: r.Output}
	}
	return rec
}

// table4Failed synthesizes the record of a quarantined case: a crash on
// every (configuration, level) observation.
func table4Failed(cfgs []*device.Config) t4Record {
	return t4Record{Results: table1Failed(cfgs).Results}
}

// foldTable4 tallies the per-mode outcome cells from the per-kernel
// records (in case order), with majority-vote wrong-code classification.
func foldTable4(cfgs []*device.Config, perMode int, records []t4Record) *Table4 {
	t := &Table4{
		PerMode: map[generator.Mode]map[string]*ModeStats{},
		Tests:   map[generator.Mode]int{},
	}
	for _, cfg := range cfgs {
		t.Keys = append(t.Keys, Key(cfg, false), Key(cfg, true))
	}
	for mi, mode := range generator.Modes {
		cell := map[string]*ModeStats{}
		for _, k := range t.Keys {
			cell[k] = &ModeStats{}
		}
		for ki := 0; ki < perMode; ki++ {
			rec := records[mi*perMode+ki]
			t.Tests[mode]++
			results := make([]oracle.Result, len(rec.Results))
			for i, r := range rec.Results {
				results[i] = oracle.Result{Key: r.Key, Outcome: device.Outcome(r.Outcome), Output: r.Output}
			}
			wrong := map[string]bool{}
			for _, k := range oracle.WrongCode(results) {
				wrong[k] = true
			}
			for _, r := range results {
				st := cell[r.Key]
				if st == nil {
					continue
				}
				switch r.Outcome {
				case device.BuildFailure:
					st.BF++
				case device.Crash:
					st.C++
				case device.Timeout:
					st.TO++
				case device.OK:
					if wrong[r.Key] {
						st.W++
					} else {
						st.OK++
					}
				}
			}
		}
		t.PerMode[mode] = cell
	}
	return t
}

// CLsmithCampaign reproduces §7.3: for each mode, generate perMode kernels
// accepted by the generating configuration (1+), run them across the
// above-threshold configurations at both optimization levels, and tally
// outcomes with majority-vote wrong-code classification.
func CLsmithCampaign(perMode int, seed int64, maxThreads int, baseFuel int64) *Table4 {
	return clsmithCampaign(campaign.Default, perMode, seed, maxThreads, baseFuel)
}

func clsmithCampaign(eng *campaign.Engine, perMode int, seed int64, maxThreads int, baseFuel int64) *Table4 {
	cfgs := AboveThresholdConfigs()
	kernels := table4Kernels(eng, perMode, seed, maxThreads, baseFuel)
	n := len(generator.Modes) * perMode
	records := make([]t4Record, n)
	campaign.Stream(nil, n, func(i, _ int) t4Record {
		return table4Record(nil, eng, cfgs, kernels, perMode, baseFuel, i, n)
	}, func(i int, r t4Record) { records[i] = r })
	return foldTable4(cfgs, perMode, records)
}

// RenderTable4 formats the campaign like the paper's Table 4.
func RenderTable4(t *Table4) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Configurations above the reliability threshold on CLsmith-generated tests\n")
	fmt.Fprintf(&b, "%-22s %-4s", "Mode (tests)", "")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%8s", k)
	}
	b.WriteByte('\n')
	for _, mode := range generator.Modes {
		cell := t.PerMode[mode]
		rows := []struct {
			label string
			pick  func(*ModeStats) string
		}{
			{"w", func(s *ModeStats) string { return fmt.Sprintf("%d", s.W) }},
			{"bf", func(s *ModeStats) string { return fmt.Sprintf("%d", s.BF) }},
			{"c", func(s *ModeStats) string { return fmt.Sprintf("%d", s.C) }},
			{"to", func(s *ModeStats) string { return fmt.Sprintf("%d", s.TO) }},
			{"ok", func(s *ModeStats) string { return fmt.Sprintf("%d", s.OK) }},
			{"w%", func(s *ModeStats) string { return fmt.Sprintf("%.1f", s.WrongPct()) }},
		}
		for ri, row := range rows {
			if ri == 0 {
				fmt.Fprintf(&b, "%-22s %-4s", fmt.Sprintf("%s (%d)", mode, t.Tests[mode]), row.label)
			} else {
				fmt.Fprintf(&b, "%-22s %-4s", "", row.label)
			}
			for _, k := range t.Keys {
				fmt.Fprintf(&b, "%8s", row.pick(cell[k]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
