package harness

import (
	"testing"

	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
)

// shardParams are deliberately tiny: the property under test is byte
// identity, not campaign statistics. CI runs this file under -race in
// both engine jobs (the default VM job and the CLFUZZ_ENGINE=tree job),
// so the shard/merge and result-cache invariants are pinned on both
// evaluation engines.
var shardParams = []Params{
	{Table: 4, Scale: 2, Seed: 99, Threads: 24},
	{Table: 5, Scale: 2, Seed: 99, Threads: 24},
}

// freshEngine returns an isolated campaign engine; withResults arms the
// cross-base result cache (the uncached reference runs without it).
func freshEngine(withResults bool) *campaign.Engine {
	eng := &campaign.Engine{Front: device.NewFrontCache(1024)}
	if withResults {
		eng.Results = campaign.NewResultCache(8192)
	}
	return eng
}

// TestShardMergeDeterminism is the campaign substrate's central
// invariant: for the Table 4 and Table 5 campaigns, (a) the cross-base
// result cache is invisible — a cached run renders byte-identical to the
// cache-free reference, and a second, fully memoized run renders the
// same bytes again — and (b) sharding is invisible — 2- and 3-shard runs
// merge byte-identical to the unsharded output. Run under -race (CI
// does) with the executor's immutable-program assertion armed.
func TestShardMergeDeterminism(t *testing.T) {
	armImmutableAssert(t)
	for _, p := range shardParams {
		ref, err := renderCampaign(freshEngine(false), p)
		if err != nil {
			t.Fatalf("table %d reference: %v", p.Table, err)
		}
		cached := freshEngine(true)
		got, err := renderCampaign(cached, p)
		if err != nil {
			t.Fatalf("table %d cached: %v", p.Table, err)
		}
		if got != ref {
			t.Fatalf("table %d: result-cached output differs from the uncached reference:\n%s\n--- vs ---\n%s", p.Table, got, ref)
		}
		again, err := renderCampaign(cached, p)
		if err != nil {
			t.Fatalf("table %d rerun: %v", p.Table, err)
		}
		if again != ref {
			t.Fatalf("table %d: fully memoized rerun differs from the reference", p.Table)
		}
		// The rerun must be served by the cross-campaign memo (Table 4
		// additionally hits within one campaign: the acceptance filter's
		// launches are reused by the matrix).
		if hits, _, _ := cached.Results.Stats(); hits == 0 {
			t.Errorf("table %d: campaigns never hit the result cache", p.Table)
		}
		for _, shards := range []int{2, 3} {
			files := make([]*ShardFile, shards)
			for s := 0; s < shards; s++ {
				// Each shard gets its own engine: shards run in separate
				// processes in production, so nothing may leak between
				// them for the merge to be byte-identical.
				sf, err := runShard(freshEngine(true), p, s, shards)
				if err != nil {
					t.Fatalf("table %d shard %d/%d: %v", p.Table, s, shards, err)
				}
				files[s] = sf
			}
			merged, err := mergeShards(freshEngine(true), files)
			if err != nil {
				t.Fatalf("table %d merge %d: %v", p.Table, shards, err)
			}
			if merged != ref {
				t.Fatalf("table %d: %d-shard merge differs from the unsharded run:\n%s\n--- vs ---\n%s", p.Table, shards, merged, ref)
			}
		}
	}
}

// TestShardMergeRejectsBadSets: incomplete, duplicated or mismatched
// shard sets must be refused, not silently merged.
func TestShardMergeRejectsBadSets(t *testing.T) {
	p := Params{Table: 4, Scale: 1, Seed: 7, Threads: 16}
	eng := freshEngine(true)
	s0, err := runShard(eng, p, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := runShard(eng, p, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mergeShards(eng, []*ShardFile{s0}); err == nil {
		t.Error("merge accepted an incomplete shard set")
	}
	if _, err := mergeShards(eng, []*ShardFile{s0, s0, s1}); err == nil {
		t.Error("merge accepted a duplicated shard")
	}
	other := *s1
	other.Seed = 8
	if _, err := mergeShards(eng, []*ShardFile{s0, &other}); err == nil {
		t.Error("merge accepted shards with mismatched parameters")
	}
	if _, err := runShard(eng, p, 2, 2); err == nil {
		t.Error("runShard accepted an out-of-range shard index")
	}
}
