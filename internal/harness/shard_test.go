package harness

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
)

// shardParams are deliberately tiny: the property under test is byte
// identity, not campaign statistics. CI runs this file under -race in
// both engine jobs (the default VM job and the CLFUZZ_ENGINE=tree job),
// so the shard/merge and result-cache invariants are pinned on both
// evaluation engines.
// The Fuel record follows the process default so the CLFUZZ_FUEL=v2 CI
// job exercises the same byte-identity suite under the fused model.
var shardParams = []Params{
	{Table: 4, Scale: 2, Seed: 99, Threads: 24, Fuel: DefaultFuelParam()},
	{Table: 5, Scale: 2, Seed: 99, Threads: 24, Fuel: DefaultFuelParam()},
}

// freshEngine returns an isolated campaign engine; withResults arms the
// cross-base result cache (the uncached reference runs without it).
func freshEngine(withResults bool) *campaign.Engine {
	eng := &campaign.Engine{Front: device.NewFrontCache(1024)}
	if withResults {
		eng.Results = campaign.NewResultCache(8192)
	}
	return eng
}

// TestShardMergeDeterminism is the campaign substrate's central
// invariant: for the Table 4 and Table 5 campaigns, (a) the cross-base
// result cache is invisible — a cached run renders byte-identical to the
// cache-free reference, and a second, fully memoized run renders the
// same bytes again — and (b) sharding is invisible — 2- and 3-shard runs
// merge byte-identical to the unsharded output. Run under -race (CI
// does) with the executor's immutable-program assertion armed.
func TestShardMergeDeterminism(t *testing.T) {
	armImmutableAssert(t)
	for _, p := range shardParams {
		ref, err := renderCampaign(nil, freshEngine(false), p)
		if err != nil {
			t.Fatalf("table %d reference: %v", p.Table, err)
		}
		cached := freshEngine(true)
		got, err := renderCampaign(nil, cached, p)
		if err != nil {
			t.Fatalf("table %d cached: %v", p.Table, err)
		}
		if got != ref {
			t.Fatalf("table %d: result-cached output differs from the uncached reference:\n%s\n--- vs ---\n%s", p.Table, got, ref)
		}
		again, err := renderCampaign(nil, cached, p)
		if err != nil {
			t.Fatalf("table %d rerun: %v", p.Table, err)
		}
		if again != ref {
			t.Fatalf("table %d: fully memoized rerun differs from the reference", p.Table)
		}
		// The rerun must be served by the cross-campaign memo (Table 4
		// additionally hits within one campaign: the acceptance filter's
		// launches are reused by the matrix).
		if hits, _, _ := cached.Results.Stats(); hits == 0 {
			t.Errorf("table %d: campaigns never hit the result cache", p.Table)
		}
		for _, shards := range []int{2, 3} {
			files := make([]*ShardFile, shards)
			for s := 0; s < shards; s++ {
				// Each shard gets its own engine: shards run in separate
				// processes in production, so nothing may leak between
				// them for the merge to be byte-identical.
				sf, err := runShard(nil, freshEngine(true), p, s, shards, ShardRunOptions{})
				if err != nil {
					t.Fatalf("table %d shard %d/%d: %v", p.Table, s, shards, err)
				}
				files[s] = sf
			}
			merged, err := mergeShards(freshEngine(true), files, nil)
			if err != nil {
				t.Fatalf("table %d merge %d: %v", p.Table, shards, err)
			}
			if merged != ref {
				t.Fatalf("table %d: %d-shard merge differs from the unsharded run:\n%s\n--- vs ---\n%s", p.Table, shards, merged, ref)
			}
		}
	}
}

// TestFuelV2CampaignDeterminism pins the fuel/v2 campaign contract:
// with the process default set to the superinstruction model, a
// campaign renders byte-identically across reruns and across a
// shard/merge split, exactly as fuel/v1 does — and shard params that
// fail to record the model are refused, so a v1 shard file can never
// be folded into a v2 campaign unnoticed. CI runs this under -race
// with CLFUZZ_FUEL=v2 set process-wide as well.
func TestFuelV2CampaignDeterminism(t *testing.T) {
	armImmutableAssert(t)
	saved := device.DefaultFuelModel
	device.DefaultFuelModel = exec.FuelV2
	t.Cleanup(func() { device.DefaultFuelModel = saved })
	p := Params{Table: 5, Scale: 2, Seed: 99, Threads: 24, Fuel: "v2"}
	ref, err := renderCampaign(nil, freshEngine(false), p)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	again, err := renderCampaign(nil, freshEngine(true), p)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if again != ref {
		t.Fatalf("fuel/v2 rerun differs from the reference:\n%s\n--- vs ---\n%s", again, ref)
	}
	files := make([]*ShardFile, 2)
	for s := range files {
		sf, err := runShard(nil, freshEngine(true), p, s, 2, ShardRunOptions{})
		if err != nil {
			t.Fatalf("shard %d/2: %v", s, err)
		}
		files[s] = sf
	}
	merged, err := mergeShards(freshEngine(true), files, nil)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged != ref {
		t.Fatalf("fuel/v2 2-shard merge differs from the unsharded run:\n%s\n--- vs ---\n%s", merged, ref)
	}
	// A shard whose params omit the fuel record must be refused while
	// the process default is v2: its records would have been produced
	// under a different timeout frontier.
	v1p := p
	v1p.Fuel = ""
	if _, err := runShard(nil, freshEngine(true), v1p, 0, 2, ShardRunOptions{}); err == nil {
		t.Fatal("shard with v1 params ran under a v2 process default")
	}
}

// TestThreadedDispatchCampaignDeterminism pins the dispatch contract at
// campaign scale, and with a stronger bar than the fuel-model suite:
// dispatch is observation-free, so with the process default flipped to
// the direct-threaded loop, a Table 5 campaign — and its 2-shard
// merge — must render byte-identical to the reference produced under
// the switch loop. Launches running through different dispatch modes
// share result-cache entries (LaunchOptions deliberately omits the mode
// from the key), so any divergence would also poison the cache; byte
// identity here pins both properties at once. CI additionally re-runs
// the whole shard/merge and fleet suites with CLFUZZ_DISPATCH=threaded
// set process-wide.
func TestThreadedDispatchCampaignDeterminism(t *testing.T) {
	armImmutableAssert(t)
	p := Params{Table: 5, Scale: 2, Seed: 99, Threads: 24, Fuel: DefaultFuelParam()}
	saved := device.DefaultDispatch
	device.DefaultDispatch = exec.DispatchSwitch
	t.Cleanup(func() { device.DefaultDispatch = saved })
	ref, err := renderCampaign(nil, freshEngine(false), p)
	if err != nil {
		t.Fatalf("switch reference: %v", err)
	}
	device.DefaultDispatch = exec.DispatchThreaded
	got, err := renderCampaign(nil, freshEngine(true), p)
	if err != nil {
		t.Fatalf("threaded run: %v", err)
	}
	if got != ref {
		t.Fatalf("threaded campaign differs from the switch reference:\n%s\n--- vs ---\n%s", got, ref)
	}
	_, thBefore := exec.DispatchCounters()
	files := make([]*ShardFile, 2)
	for s := range files {
		sf, err := runShard(nil, freshEngine(true), p, s, 2, ShardRunOptions{})
		if err != nil {
			t.Fatalf("shard %d/2: %v", s, err)
		}
		files[s] = sf
	}
	merged, err := mergeShards(freshEngine(true), files, nil)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged != ref {
		t.Fatalf("threaded 2-shard merge differs from the switch reference:\n%s\n--- vs ---\n%s", merged, ref)
	}
	if _, thAfter := exec.DispatchCounters(); thAfter == thBefore {
		t.Fatal("the threaded campaign never ran the threaded loop")
	}
}

// TestShardMergeRejectsBadSets: incomplete, duplicated or mismatched
// shard sets must be refused — with errors precise enough to name the
// offending file and case — not silently merged.
func TestShardMergeRejectsBadSets(t *testing.T) {
	p := Params{Table: 4, Scale: 1, Seed: 7, Threads: 16, Fuel: DefaultFuelParam()}
	eng := freshEngine(true)
	s0, err := runShard(nil, eng, p, 0, 2, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := runShard(nil, eng, p, 1, 2, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runShard(nil, eng, p, 2, 2, ShardRunOptions{}); err == nil {
		t.Error("runShard accepted an out-of-range shard index")
	}
	clone := func(sf *ShardFile) *ShardFile {
		cp := *sf
		cp.Records = append([]ShardRecord(nil), sf.Records...)
		return &cp
	}
	tests := []struct {
		name    string
		files   func() []*ShardFile
		labels  []string
		wantErr []string // substrings the error must carry
	}{
		{
			name:    "incomplete set",
			files:   func() []*ShardFile { return []*ShardFile{s0} },
			wantErr: []string{"missing cases"},
		},
		{
			name:    "duplicated shard",
			files:   func() []*ShardFile { return []*ShardFile{s0, s0, s1} },
			labels:  []string{"a.json", "b.json", "c.json"},
			wantErr: []string{"appears in both", "a.json", "b.json"},
		},
		{
			name: "duplicate index across shards",
			files: func() []*ShardFile {
				bad := clone(s1)
				bad.Records[0].Index = s0.Records[0].Index
				return []*ShardFile{s0, bad}
			},
			labels:  []string{"good.json", "bad.json"},
			wantErr: []string{"appears in both", "good.json", "bad.json"},
		},
		{
			name: "mismatched parameters",
			files: func() []*ShardFile {
				other := clone(s1)
				other.Seed = 8
				return []*ShardFile{s0, other}
			},
			wantErr: []string{"parameters disagree"},
		},
		{
			name: "mismatched schema",
			files: func() []*ShardFile {
				other := clone(s0)
				other.Schema = "clfuzz-shard/v0"
				return []*ShardFile{other, s1}
			},
			labels:  []string{"old.json", "new.json"},
			wantErr: []string{"old.json", "unknown shard schema"},
		},
		{
			name: "index out of range",
			files: func() []*ShardFile {
				bad := clone(s0)
				bad.Records[0].Index = bad.Cases + 5
				return []*ShardFile{bad, s1}
			},
			labels:  []string{"oob.json", "ok.json"},
			wantErr: []string{"oob.json", "out of range"},
		},
	}
	for _, tt := range tests {
		_, err := mergeShards(eng, tt.files(), tt.labels)
		if err == nil {
			t.Errorf("%s: merge accepted the bad set", tt.name)
			continue
		}
		for _, want := range tt.wantErr {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", tt.name, err, want)
			}
		}
	}
}

// TestValidateShardFile: per-file validation catches corruption a merge
// would otherwise report confusingly (or not at all), naming the file.
func TestValidateShardFile(t *testing.T) {
	p := Params{Table: 4, Scale: 1, Seed: 7, Threads: 16, Fuel: DefaultFuelParam()}
	eng := freshEngine(true)
	good, err := runShard(nil, eng, p, 0, 2, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateShardFile(good, "good.json"); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	mutate := func(fn func(sf *ShardFile)) *ShardFile {
		cp := *good
		cp.Records = append([]ShardRecord(nil), good.Records...)
		fn(&cp)
		return &cp
	}
	tests := []struct {
		name    string
		sf      *ShardFile
		wantErr string
	}{
		{"bad schema", mutate(func(sf *ShardFile) { sf.Schema = "nope" }), "unknown shard schema"},
		{"bad slice", mutate(func(sf *ShardFile) { sf.Shard = 2 }), "bad shard"},
		{"index out of range", mutate(func(sf *ShardFile) { sf.Records[0].Index = sf.Cases }), "out of range"},
		{"wrong slot", mutate(func(sf *ShardFile) { sf.Records[0].Index = 1 }), "does not belong to shard"},
		{"duplicate case", mutate(func(sf *ShardFile) { sf.Records[1].Index = sf.Records[0].Index }), "appears twice"},
		{"truncated payload", mutate(func(sf *ShardFile) { sf.Records[0].Data = json.RawMessage(`{"resul`) }), "truncated or corrupt payload"},
		{"empty payload", mutate(func(sf *ShardFile) { sf.Records[0].Data = nil }), "truncated or corrupt payload"},
	}
	for _, tt := range tests {
		err := ValidateShardFile(tt.sf, "f.json")
		if err == nil {
			t.Errorf("%s: accepted", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.wantErr)
		}
		if !strings.Contains(err.Error(), "f.json") {
			t.Errorf("%s: error %q does not name the file", tt.name, err)
		}
	}
}

// TestLoadShardFile: on-disk corruption (a worker killed mid-write
// without the atomic rename) is reported precisely, naming the file.
func TestLoadShardFile(t *testing.T) {
	dir := t.TempDir()
	truncated := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(truncated, []byte(`{"schema":"clfuzz-shard/v1","records":[{"ind`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadShardFile(truncated)
	if err == nil {
		t.Fatal("loaded a truncated file")
	}
	if !strings.Contains(err.Error(), "truncated.json") || !strings.Contains(err.Error(), "truncated or corrupt") {
		t.Fatalf("error %q does not identify the corrupt file", err)
	}
	if _, err := LoadShardFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("loaded an absent file")
	}
	// Round trip through MergeShardPaths.
	p := Params{Table: 4, Scale: 1, Seed: 7, Threads: 16, Fuel: DefaultFuelParam()}
	eng := freshEngine(true)
	var paths []string
	for s := 0; s < 2; s++ {
		sf, err := runShard(nil, eng, p, s, 2, ShardRunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sf)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "shard-"+string(rune('0'+s))+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	merged, err := MergeShardPaths(paths)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := renderCampaign(nil, freshEngine(true), p)
	if err != nil {
		t.Fatal(err)
	}
	if merged != ref {
		t.Fatal("MergeShardPaths output differs from the unsharded run")
	}
}

// TestShardResume: a partial prior file is reused — only the missing
// cases execute — and the result is byte-identical to a fresh run.
func TestShardResume(t *testing.T) {
	p := Params{Table: 4, Scale: 2, Seed: 99, Threads: 24, Fuel: DefaultFuelParam()}
	full, err := runShard(nil, freshEngine(true), p, 0, 2, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) < 2 {
		t.Fatalf("campaign too small for the test: %d records", len(full.Records))
	}
	partial := *full
	partial.Records = append([]ShardRecord(nil), full.Records[:1]...)
	var ran int
	resumed, err := runShard(nil, freshEngine(true), p, 0, 2, ShardRunOptions{
		Prior:  &partial,
		OnCase: func(done, total int) { ran++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != len(full.Records)-1 {
		t.Fatalf("resume ran %d cases, want %d (only the missing ones)", ran, len(full.Records)-1)
	}
	a, _ := json.Marshal(full)
	b, _ := json.Marshal(resumed)
	if string(a) != string(b) {
		t.Fatalf("resumed shard differs from the fresh run:\n%s\nvs\n%s", a, b)
	}
	// A prior file from a different slice or campaign must be refused.
	wrong := *full
	wrong.Shard = 1
	if _, err := runShard(nil, freshEngine(true), p, 0, 2, ShardRunOptions{Prior: &wrong}); err == nil {
		t.Error("resume accepted a prior file from another slice")
	}
}

// TestShardCancellation: a cancelled shard run returns ctx's error plus
// a valid partial file that resumes to the byte-identical full result.
func TestShardCancellation(t *testing.T) {
	p := Params{Table: 4, Scale: 2, Seed: 99, Threads: 24, Fuel: DefaultFuelParam()}
	full, err := runShard(nil, freshEngine(true), p, 0, 1, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var flushed *ShardFile
	partial, err := runShard(ctx, freshEngine(true), p, 0, 1, ShardRunOptions{
		OnCase: func(done, total int) {
			if done == 1 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	flushed = partial
	if flushed == nil {
		t.Fatal("no partial file flushed on cancellation")
	}
	if len(flushed.Records) >= len(full.Records) {
		t.Fatalf("cancelled run completed all %d cases", len(full.Records))
	}
	if err := ValidateShardFile(flushed, "partial"); err != nil {
		t.Fatalf("partial file invalid: %v", err)
	}
	resumed, err := runShard(nil, freshEngine(true), p, 0, 1, ShardRunOptions{Prior: flushed})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(full)
	b, _ := json.Marshal(resumed)
	if string(a) != string(b) {
		t.Fatal("resume after cancellation diverged from the uninterrupted run")
	}
}

// TestQuarantineShard: the synthesized all-crash shard merges with real
// shards and covers exactly the quarantined slice.
func TestQuarantineShard(t *testing.T) {
	p := Params{Table: 4, Scale: 1, Seed: 7, Threads: 16, Fuel: DefaultFuelParam()}
	real0, err := runShard(nil, freshEngine(true), p, 0, 2, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q1, err := QuarantineShard(p, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateShardFile(q1, "quarantine"); err != nil {
		t.Fatalf("quarantine shard invalid: %v", err)
	}
	if !q1.Complete() {
		t.Fatal("quarantine shard does not cover its slice")
	}
	merged, err := mergeShards(freshEngine(true), []*ShardFile{real0, q1}, nil)
	if err != nil {
		t.Fatalf("merge with quarantined shard: %v", err)
	}
	ref, err := renderCampaign(nil, freshEngine(true), p)
	if err != nil {
		t.Fatal(err)
	}
	if merged == ref {
		t.Fatal("quarantined cases left no trace in the rendered table")
	}
}
