package corpus

import (
	"math/rand"

	"clfuzz/internal/generator"
)

// SwarmSubset returns the swarm-testing feature subset for one round of
// a campaign: a deterministic pseudo-random on/off assignment for the
// four generator feature dimensions, keyed by (seed, round). Each
// feature is enabled independently with probability one half, so across
// rounds every feature appears both enabled and disabled and every one
// of the sixteen subsets is reachable — the property the swarm tests
// pin. The same (seed, round) always yields the same subset, in any
// process.
func SwarmSubset(seed int64, round int) generator.FeatureSet {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(round)))
	return generator.FeatureSet{
		Vectors:    rng.Intn(2) == 1,
		Barriers:   rng.Intn(2) == 1,
		Sections:   rng.Intn(2) == 1,
		Reductions: rng.Intn(2) == 1,
	}
}

// FeatureTag renders a subset compactly ("v-s-" enables vectors and
// sections) for record streams and logs.
func FeatureTag(fs generator.FeatureSet) string {
	b := []byte{'-', '-', '-', '-'}
	if fs.Vectors {
		b[0] = 'v'
	}
	if fs.Barriers {
		b[1] = 'b'
	}
	if fs.Sections {
		b[2] = 's'
	}
	if fs.Reductions {
		b[3] = 'r'
	}
	return string(b)
}
