// Package corpus closes the fuzzing loop: it turns the executor's edge
// coverage (exec.CoverMap, collected by the register VM dispatch loop)
// into a feedback signal that steers test generation.
//
// The package provides four pieces:
//
//   - Corpus: a bounded set of kernels ranked by the novel coverage they
//     contributed when first executed. Admission requires a previously
//     unseen source fingerprint and strictly positive edge gain, so a
//     zero-novelty plateau cannot grow the corpus; eviction removes the
//     lowest-gain (then oldest) member.
//   - Mutate: syntactic mutations of corpus members — EMI block
//     injection (emi.Inject), integer-constant perturbation, operator
//     swaps within a semantics-safe category, and splicing statements
//     from a donor member. Mutants always re-parse; ones that fail
//     semantic checking surface as contained BuildFailure outcomes,
//     never panics (pinned by FuzzCorpusMutate).
//   - SwarmSubset: deterministic per-(seed, round) random subsets of the
//     generator's feature switches (vectors, barriers, atomic sections,
//     atomic reductions) — swarm testing, which diversifies what fresh
//     random generation reaches beyond the six fixed CLsmith modes.
//   - Chain: the feedback loop itself. A chain is an independent,
//     sequential fuzzing lane: each step picks a swarm subset, either
//     generates a fresh kernel or mutates a ranked corpus member, runs
//     it on the reference configuration with coverage enabled plus a
//     small differential configuration set, admits it to the corpus if
//     it reached novel edges, and emits one deterministic StepRecord.
//
// Determinism discipline: every choice derives from the chain seed and
// step index, coverage accumulation is commutative, and steps within a
// chain are computed strictly in order (lazily, under the chain lock),
// so the corpus, coverage map and record stream are byte-identical
// across runs, processes and shard partitions at the same seed. A tree-
// engine process collects no coverage (the VM owns the hooks), so its
// chains degrade gracefully to pure swarm-random generation with an
// empty corpus — deterministic, never panicking.
package corpus
