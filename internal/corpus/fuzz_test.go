package corpus

import (
	"math/rand"
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/parser"
)

// FuzzCorpusMutate is the mutation-robustness fuzz target: any stacked
// mutation of any corpus member must produce source that re-parses, and
// whose full compile — semantic checking, optimization, bytecode
// lowering or tree fallback — terminates without panicking. Semantic
// rejection is fine (such mutants surface as contained build failures
// downstream); a parse failure or a panic is a bug in the mutator. CI
// runs this as a short -fuzztime smoke step next to
// FuzzLowerMatchesTree.
func FuzzCorpusMutate(f *testing.F) {
	f.Add(uint8(0), uint32(1), uint32(2), int64(3))
	f.Add(uint8(1), uint32(7), uint32(7), int64(11))
	f.Add(uint8(2), uint32(42), uint32(5), int64(-1))
	f.Add(uint8(3), uint32(9), uint32(1000), int64(99))
	modes := []generator.Mode{
		generator.ModeBasic, generator.ModeVector, generator.ModeBarrier, generator.ModeAll,
	}
	f.Fuzz(func(t *testing.T, mode uint8, seed, donorSeed uint32, mutSeed int64) {
		mk := generator.Generate(generator.Options{
			Mode: modes[int(mode)%len(modes)], Seed: int64(seed), MaxTotalThreads: 32,
		})
		dk := generator.Generate(generator.Options{
			Mode: modes[int(mode+1)%len(modes)], Seed: int64(donorSeed), MaxTotalThreads: 32,
		})
		c := New(4)
		m := c.Add(mk, 1)
		donor := c.Add(dk, 1)
		if m == nil {
			t.Skip("base kernel rejected (duplicate fingerprint)")
		}
		rng := rand.New(rand.NewSource(mutSeed))
		// Mutate repeatedly, feeding mutants back in as parents, so the
		// target also covers second-generation mutations of grown programs.
		parent := m
		for i := 0; i < 3; i++ {
			origin, mut, err := Mutate(rng, parent, donor)
			if err != nil {
				return
			}
			if origin == "" || mut == nil {
				t.Fatalf("Mutate returned empty origin %q / kernel %v without error", origin, mut)
			}
			if _, err := parser.Parse(mut.Src); err != nil {
				t.Fatalf("%s mutant stopped parsing: %v\n%s", origin, err, mut.Src)
			}
			// The full compile chain — sema, optimization, lowering with
			// tree fallback — must terminate, not necessarily succeed.
			cr := device.Reference().Compile(mut.Src, true)
			if cr.Outcome == device.OK {
				next := c.Add(mut, 1)
				if next != nil {
					parent = next
				}
			}
		}
	})
}
