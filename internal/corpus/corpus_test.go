package corpus

import (
	"math/rand"
	"testing"

	"clfuzz/internal/generator"
)

func testKernel(seed int64) *generator.Kernel {
	return generator.Generate(generator.Options{
		Mode: generator.ModeBasic, Seed: seed, MaxTotalThreads: 16,
	})
}

// TestCorpusAdmission pins the admission rules: positive gain required
// (the zero-novelty plateau admits nothing), duplicate fingerprints
// rejected — including re-submissions of an already-evicted member.
func TestCorpusAdmission(t *testing.T) {
	c := New(4)
	k := testKernel(1)
	if m := c.Add(k, 0); m != nil {
		t.Fatal("zero-gain candidate was admitted")
	}
	if m := c.Add(k, -3); m != nil {
		t.Fatal("negative-gain candidate was admitted")
	}
	if c.Len() != 0 {
		t.Fatalf("plateau grew the corpus to %d", c.Len())
	}
	if m := c.Add(k, 5); m == nil {
		t.Fatal("positive-gain candidate was rejected")
	}
	if m := c.Add(k, 7); m != nil {
		t.Fatal("duplicate fingerprint was admitted")
	}
	if c.Len() != 1 {
		t.Fatalf("corpus size %d, want 1", c.Len())
	}
}

// TestCorpusEviction: when full, the lowest-gain then oldest member is
// evicted, and an evicted member's fingerprint stays rejected forever.
func TestCorpusEviction(t *testing.T) {
	c := New(3)
	ks := []*generator.Kernel{testKernel(1), testKernel(2), testKernel(3), testKernel(4), testKernel(5)}
	c.Add(ks[0], 5)
	c.Add(ks[1], 2) // unique lowest gain: first eviction victim
	c.Add(ks[2], 8)
	c.Add(ks[3], 4)
	if c.Len() != 3 {
		t.Fatalf("corpus size %d, want 3", c.Len())
	}
	for _, m := range c.Ranked() {
		if m.Fingerprint == Fingerprint(ks[1].Src) {
			t.Fatal("lowest-gain member survived eviction")
		}
	}
	if m := c.Add(ks[1], 100); m != nil {
		t.Fatal("evicted fingerprint was re-admitted")
	}
	// Gains are now 5, 8, 4: ks[3] is lowest and goes next.
	c.Add(ks[4], 6)
	for _, m := range c.Ranked() {
		if m.Fingerprint == Fingerprint(ks[3].Src) {
			t.Fatal("lowest-gain member survived the second eviction")
		}
	}
}

// TestCorpusEvictionTieBreak: equal gains evict the oldest member.
func TestCorpusEvictionTieBreak(t *testing.T) {
	c := New(2)
	a, b, d := testKernel(10), testKernel(11), testKernel(12)
	c.Add(a, 3)
	c.Add(b, 3)
	c.Add(d, 3)
	ranked := c.Ranked()
	if len(ranked) != 2 {
		t.Fatalf("corpus size %d, want 2", len(ranked))
	}
	for _, m := range ranked {
		if m.Fingerprint == Fingerprint(a.Src) {
			t.Fatal("oldest member survived a tied eviction")
		}
	}
}

// TestCorpusRanking: Ranked orders by gain descending, ties by admission
// order.
func TestCorpusRanking(t *testing.T) {
	c := New(8)
	c.Add(testKernel(1), 2)
	c.Add(testKernel(2), 9)
	c.Add(testKernel(3), 9)
	c.Add(testKernel(4), 5)
	ranked := c.Ranked()
	wantGains := []int{9, 9, 5, 2}
	wantIDs := []int{1, 2, 3, 0}
	for i, m := range ranked {
		if m.Gain != wantGains[i] || m.ID != wantIDs[i] {
			t.Fatalf("ranked[%d] = id %d gain %d, want id %d gain %d",
				i, m.ID, m.Gain, wantIDs[i], wantGains[i])
		}
	}
}

// TestCorpusPickDeterministicAndBiased: Pick is a pure function of the
// rng stream, and favors high-gain members.
func TestCorpusPickDeterministicAndBiased(t *testing.T) {
	build := func() *Corpus {
		c := New(8)
		c.Add(testKernel(1), 1)
		c.Add(testKernel(2), 50)
		c.Add(testKernel(3), 10)
		return c
	}
	a, b := build(), build()
	ra, rb := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		ma, mb := a.Pick(ra), b.Pick(rb)
		if ma.ID != mb.ID {
			t.Fatalf("draw %d: Pick diverged (%d vs %d) on identical state", i, ma.ID, mb.ID)
		}
		counts[ma.ID]++
	}
	// Member 1 (gain 50) ranks first; min-of-two-draws must favor it over
	// the gain-1 member.
	if counts[1] <= counts[0] {
		t.Fatalf("high-gain member picked %d times, low-gain %d — ranking bias inverted",
			counts[1], counts[0])
	}
}

// TestCorpusHashTracksState: equal histories hash equal; different
// admissions hash different.
func TestCorpusHashTracksState(t *testing.T) {
	a, b := New(4), New(4)
	if a.Hash() != b.Hash() {
		t.Fatal("empty corpora hash differently")
	}
	a.Add(testKernel(1), 3)
	b.Add(testKernel(1), 3)
	if a.Hash() != b.Hash() {
		t.Fatal("identical admissions hash differently")
	}
	b.Add(testKernel(2), 4)
	if a.Hash() == b.Hash() {
		t.Fatal("diverged corpora hash equal")
	}
}
