package corpus

import (
	"testing"

	"clfuzz/internal/generator"
)

// TestSwarmSubsetDeterministic: the subset is a pure function of
// (seed, round) — table-driven over representative points, pinning the
// exact assignments so a quiet rng change cannot slip through.
func TestSwarmSubsetDeterministic(t *testing.T) {
	cases := []struct {
		seed  int64
		round int
	}{
		{1, 0}, {1, 1}, {1, 63}, {7, 0}, {7, 31}, {1000003, 5}, {-9, 2},
	}
	for _, tc := range cases {
		a, b := SwarmSubset(tc.seed, tc.round), SwarmSubset(tc.seed, tc.round)
		if a != b {
			t.Fatalf("seed %d round %d: %+v vs %+v", tc.seed, tc.round, a, b)
		}
	}
	// Distinct rounds of one campaign must not all collapse to one subset.
	distinct := map[generator.FeatureSet]bool{}
	for round := 0; round < 32; round++ {
		distinct[SwarmSubset(42, round)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("32 rounds produced a single feature subset")
	}
}

// TestSwarmSubsetReachability: across a modest round horizon, every
// feature is observed both enabled and disabled, for several seeds — the
// swarm-testing property that no feature is permanently locked in or
// out of a campaign.
func TestSwarmSubsetReachability(t *testing.T) {
	for _, seed := range []int64{1, 23, 42, 1000003} {
		var on, off generator.FeatureSet
		for round := 0; round < 64; round++ {
			fs := SwarmSubset(seed, round)
			on.Vectors = on.Vectors || fs.Vectors
			on.Barriers = on.Barriers || fs.Barriers
			on.Sections = on.Sections || fs.Sections
			on.Reductions = on.Reductions || fs.Reductions
			off.Vectors = off.Vectors || !fs.Vectors
			off.Barriers = off.Barriers || !fs.Barriers
			off.Sections = off.Sections || !fs.Sections
			off.Reductions = off.Reductions || !fs.Reductions
		}
		all := generator.FeatureSet{Vectors: true, Barriers: true, Sections: true, Reductions: true}
		if on != all {
			t.Fatalf("seed %d: features never enabled across 64 rounds: %+v", seed, on)
		}
		if off != all {
			t.Fatalf("seed %d: features never disabled across 64 rounds: %+v", seed, off)
		}
	}
}

// TestFeatureTag pins the tag encoding.
func TestFeatureTag(t *testing.T) {
	cases := []struct {
		fs   generator.FeatureSet
		want string
	}{
		{generator.FeatureSet{}, "----"},
		{generator.FeatureSet{Vectors: true, Sections: true}, "v-s-"},
		{generator.FeatureSet{Barriers: true, Reductions: true}, "-b-r"},
		{generator.FeatureSet{Vectors: true, Barriers: true, Sections: true, Reductions: true}, "vbsr"},
	}
	for _, tc := range cases {
		if got := FeatureTag(tc.fs); got != tc.want {
			t.Fatalf("FeatureTag(%+v) = %q, want %q", tc.fs, got, tc.want)
		}
	}
}

// TestSwarmFeaturesDriveGenerator: a forced subset actually overrides
// the mode-derived feature gates, and the same (seed, features) pair
// regenerates the identical source.
func TestSwarmFeaturesDriveGenerator(t *testing.T) {
	none := generator.FeatureSet{}
	all := generator.FeatureSet{Vectors: true, Barriers: true, Sections: true, Reductions: true}
	a := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 7, Features: &none, MaxTotalThreads: 32})
	b := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 7, Features: &all, MaxTotalThreads: 32})
	c := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 7, Features: &none, MaxTotalThreads: 32})
	if a.Src == b.Src {
		t.Fatal("feature subsets none and all generated identical source")
	}
	if a.Src != c.Src {
		t.Fatal("identical (seed, features) generated different source")
	}
}
