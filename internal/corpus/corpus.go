package corpus

import (
	"math/rand"
	"sort"

	"clfuzz/internal/generator"
)

// Member is one corpus entry: a runnable kernel plus the ranking
// metadata recorded at admission.
type Member struct {
	// ID is the admission sequence number (unique within one corpus).
	ID int
	// Kernel is the runnable test case. Src holds the (possibly mutated)
	// source; the buffer-shape metadata stays valid across mutations —
	// EMI injection updates DeadLen, and every other mutator preserves
	// the parameter list.
	Kernel *generator.Kernel
	// Fingerprint is the FNV-1a hash of Kernel.Src.
	Fingerprint uint64
	// Gain is the number of edges novel to the campaign when this member
	// first executed — the ranking signal.
	Gain int
}

// Corpus is a bounded, ranked set of kernels. Admission requires a fresh
// source fingerprint and strictly positive coverage gain; when full, the
// lowest-gain (then oldest) member is evicted. All operations are
// deterministic: ranking breaks ties by admission order.
//
// Corpus is not safe for concurrent use; each fuzzing chain owns one and
// serializes its steps.
type Corpus struct {
	max     int
	nextID  int
	members []*Member
	seen    map[uint64]struct{}
}

// New returns an empty corpus bounded to max members (minimum 1).
func New(max int) *Corpus {
	if max < 1 {
		max = 1
	}
	return &Corpus{max: max, seen: make(map[uint64]struct{})}
}

// Fingerprint hashes a kernel source (FNV-1a).
func Fingerprint(src string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= 1099511628211
	}
	return h
}

// Len returns the number of members.
func (c *Corpus) Len() int { return len(c.members) }

// Add admits a kernel that contributed gain novel edges. It returns the
// new member, or nil when the candidate is rejected: non-positive gain
// (the zero-novelty plateau) or a fingerprint already seen (duplicates
// are rejected even after their original was evicted — re-running an
// already-explored program cannot contribute new coverage). When the
// corpus is full, the lowest-gain, then oldest, member is evicted.
func (c *Corpus) Add(k *generator.Kernel, gain int) *Member {
	if gain <= 0 {
		return nil
	}
	fp := Fingerprint(k.Src)
	if _, dup := c.seen[fp]; dup {
		return nil
	}
	c.seen[fp] = struct{}{}
	m := &Member{ID: c.nextID, Kernel: k, Fingerprint: fp, Gain: gain}
	c.nextID++
	if len(c.members) >= c.max {
		evict := 0
		for i, e := range c.members {
			w := c.members[evict]
			if e.Gain < w.Gain || (e.Gain == w.Gain && e.ID < w.ID) {
				evict = i
			}
		}
		c.members = append(c.members[:evict], c.members[evict+1:]...)
	}
	c.members = append(c.members, m)
	return m
}

// Ranked returns the members ordered by gain (descending), breaking ties
// by admission order (ascending). The slice is freshly allocated.
func (c *Corpus) Ranked() []*Member {
	out := append([]*Member(nil), c.members...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Pick selects a member for mutation, biased toward high-gain members:
// the minimum of two uniform draws over the ranked order. It panics on
// an empty corpus; callers schedule fresh generation instead.
func (c *Corpus) Pick(rng *rand.Rand) *Member {
	ranked := c.Ranked()
	i, j := rng.Intn(len(ranked)), rng.Intn(len(ranked))
	if j < i {
		i = j
	}
	return ranked[i]
}

// Hash digests the corpus state — member IDs, fingerprints and gains in
// ranked order — so determinism tests can compare corpora across
// processes with one word.
func (c *Corpus) Hash() uint64 {
	h := uint64(14695981039346656037)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	for _, m := range c.Ranked() {
		word(uint64(m.ID))
		word(m.Fingerprint)
		word(uint64(m.Gain))
	}
	return h
}
