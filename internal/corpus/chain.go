package corpus

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
)

// StepRecord is one fuzzing step's deterministic, mergeable record: what
// ran, where it came from, and the coverage it contributed. The edge
// list holds only the bits novel to the chain at this step, so folding
// records in case order reconstructs the exact coverage-over-time curve
// (and the union across shards equals the direct run's map bit for bit).
type StepRecord struct {
	Chain    int      `json:"chain"`
	Step     int      `json:"step"`
	Origin   string   `json:"origin"`
	Parent   int      `json:"parent"` // corpus member mutated; -1 for fresh
	Features string   `json:"features"`
	SrcHash  uint64   `json:"src_hash"`
	Outcome  string   `json:"outcome"`
	Mismatch bool     `json:"mismatch,omitempty"` // differential wrong-code signal
	Gain     int      `json:"gain"`
	Corpus   int      `json:"corpus"` // corpus size after this step
	Edges    []uint32 `json:"edges,omitempty"`
	Sites    []uint64 `json:"sites,omitempty"` // defect-site hits this step
}

// ChainConfig parameterizes one fuzzing chain.
type ChainConfig struct {
	// Index labels the chain in records.
	Index int
	// Seed roots every pseudo-random choice of the chain (swarm subsets,
	// fresh-vs-mutate scheduling, mutation picks, generator seeds).
	Seed int64
	// Threads caps generated-kernel thread counts.
	Threads int
	// BaseFuel is the per-launch fuel budget (device.DefaultFuel if 0).
	BaseFuel int64
	// CorpusSize bounds the chain's corpus (default 64).
	CorpusSize int
	// FreshProb is the probability a step generates a fresh kernel even
	// with a non-empty corpus (default 0.3); an empty corpus always
	// generates fresh.
	FreshProb float64
	// Ref is the configuration coverage is defined on; every step runs it
	// with optimizations enabled and coverage collected, then with
	// optimizations disabled as the first differential observation.
	Ref *device.Config
	// Diff are additional configurations run (optimizations enabled) for
	// the differential wrong-code check on OK reference runs.
	Diff []*device.Config
}

// Chain is one independent fuzzing lane: a corpus, a coverage map, and a
// lazily computed, strictly ordered step sequence. Step(i) computes
// steps 0..i in order under the chain lock, so any concurrent access
// pattern — campaign.Stream fanning a shard's cases over workers, a
// shard that owns only part of the chain recomputing its prefix — yields
// the identical record stream.
type Chain struct {
	mu     sync.Mutex
	eng    *campaign.Engine
	cfg    ChainConfig
	cover  *exec.CoverMap
	corpus *Corpus
	recs   []StepRecord
}

// NewChain returns a chain running its launches through eng.
func NewChain(eng *campaign.Engine, cfg ChainConfig) *Chain {
	if cfg.CorpusSize <= 0 {
		cfg.CorpusSize = 64
	}
	if cfg.FreshProb <= 0 {
		cfg.FreshProb = 0.3
	}
	return &Chain{
		eng:    eng,
		cfg:    cfg,
		cover:  new(exec.CoverMap),
		corpus: New(cfg.CorpusSize),
	}
}

// Cover returns the chain's accumulated coverage map.
func (c *Chain) Cover() *exec.CoverMap { return c.cover }

// CorpusHash digests the chain's corpus state (see Corpus.Hash).
func (c *Chain) CorpusHash() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corpus.Hash()
}

// CorpusLen returns the chain's corpus size.
func (c *Chain) CorpusLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corpus.Len()
}

// Step returns the record of the given step, computing every earlier
// step of the chain first (in order, exactly once). A step run after ctx
// fires reports a cancel outcome and leaves the corpus and coverage
// untouched; the shard sink drops such poisoned records and a resume
// recomputes them cleanly.
func (c *Chain) Step(ctx context.Context, step int) StepRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.recs) <= step {
		c.recs = append(c.recs, c.stepLocked(ctx, len(c.recs)))
	}
	return c.recs[step]
}

// mix disperses (seed, step) into an rng seed (splitmix64 finalizer), so
// chains and steps draw from well-separated streams.
func mix(seed int64, step int) int64 {
	z := uint64(seed) + uint64(step)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func (c *Chain) stepLocked(ctx context.Context, step int) StepRecord {
	rng := rand.New(rand.NewSource(mix(c.cfg.Seed, step)))
	fs := SwarmSubset(c.cfg.Seed, step)
	rec := StepRecord{
		Chain:    c.cfg.Index,
		Step:     step,
		Origin:   OriginFresh,
		Parent:   -1,
		Features: FeatureTag(fs),
	}

	// Schedule: mutate a ranked corpus member preferentially; fall back
	// to (or interleave with) fresh swarm-random generation.
	var k *generator.Kernel
	if c.corpus.Len() > 0 && rng.Float64() >= c.cfg.FreshProb {
		m := c.corpus.Pick(rng)
		var donor *Member
		if c.corpus.Len() > 1 {
			donor = c.corpus.Pick(rng)
		}
		if origin, mk, err := Mutate(rng, m, donor); err == nil {
			k, rec.Origin, rec.Parent = mk, origin, m.ID
		}
	}
	if k == nil {
		emiBlocks := 0
		if rng.Intn(2) == 1 {
			emiBlocks = 1
		}
		k = generator.Generate(generator.Options{
			Mode:            generator.ModeAll,
			Seed:            rng.Int63(),
			Features:        &fs,
			EMIBlocks:       emiBlocks,
			MaxTotalThreads: c.cfg.Threads,
		})
	}
	rec.SrcHash = Fingerprint(k.Src)

	// Coverage launch: the reference configuration, optimizations on,
	// collecting into a private per-step map. Workers is pinned to 1:
	// outputs are schedule-independent, but a failing launch's coverage
	// is not (the serial executor stops at the first failed group, the
	// parallel one runs all groups), so the chain always takes the
	// serial schedule.
	stepCov := new(exec.CoverMap)
	cse := campaign.Case{
		Name:    fmt.Sprintf("chain%d-step%d", c.cfg.Index, step),
		Src:     k.Src,
		ND:      k.ND,
		Buffers: k.Buffers,
	}
	lo := campaign.LaunchOptions{BaseFuel: c.cfg.BaseFuel, Workers: 1, Ctx: ctx}
	refLo := lo
	refLo.Cover = stepCov
	ref := c.eng.RunCase(c.cfg.Ref, true, cse, refLo)
	rec.Outcome = ref.Outcome.String()
	if ref.Outcome == device.Canceled {
		// Poisoned step: the launch observed an arbitrary prefix. Leave
		// chain state untouched; the record is dropped downstream.
		return rec
	}

	for _, e := range stepCov.Edges() {
		if !c.cover.Has(e) {
			rec.Edges = append(rec.Edges, e)
		}
	}
	rec.Gain = len(rec.Edges)
	c.cover.AddEdges(rec.Edges)
	sites := stepCov.SiteHits()
	c.cover.AddSites(sites)
	for _, s := range sites {
		if s != 0 {
			rec.Sites = sites[:]
			break
		}
	}

	c.corpus.Add(k, rec.Gain)
	rec.Corpus = c.corpus.Len()

	// Differential wrong-code check: reference with optimizations off,
	// plus the Diff configurations, all coverage-off. Outcome divergence
	// is expected across defect models (build failures, crashes); the
	// mismatch signal is two successful runs disagreeing on output.
	if ref.Outcome == device.OK {
		check := func(cfg *device.Config, opt bool) {
			r := c.eng.RunCase(cfg, opt, cse, lo)
			if r.Outcome == device.OK && !equalOutputs(r.Output, ref.Output) {
				rec.Mismatch = true
			}
		}
		check(c.cfg.Ref, false)
		for _, dc := range c.cfg.Diff {
			if dc != c.cfg.Ref {
				check(dc, true)
			}
		}
	}
	return rec
}

func equalOutputs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
