package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/emi"
	"clfuzz/internal/generator"
	"clfuzz/internal/parser"
)

// Origin tags name how a fuzzing-step kernel came to be; they appear in
// StepRecord.Origin.
const (
	OriginFresh  = "fresh"      // fresh swarm-random generation
	OriginEMI    = "emi"        // EMI dead-block injection into a member
	OriginConst  = "const"      // integer-constant perturbation
	OriginOp     = "op"         // operator swap within a category
	OriginSplice = "splice"     // statement spliced in from a donor member
	OriginQuar   = "quarantine" // synthesized for a quarantined shard
)

// mutantSrcCap stops the stacked EMI growth once a member's source gets
// this large: beyond it, parse/print dominates step cost for no extra
// coverage signal.
const mutantSrcCap = 32 << 10

// Mutate derives a new kernel from corpus member m (with donor as the
// splice source; donor may be nil or m itself, which just disables
// splicing). Mutations stack: a layout-shifting EMI injection leads
// whenever the member is under the size cap — relabeling every
// downstream branch, so the mutant's executed footprint indexes fresh
// bitmap territory instead of re-walking the parent's edges — then one
// or two value/structure mutations (splice, constant perturbation,
// operator swap) pile on. The returned origin joins the applied kinds
// with "+" in application order. Every choice is a deterministic
// function of the rng stream. The returned kernel shares m's launch
// geometry and buffer metadata (EMI injection updates DeadLen); its
// source always re-parses, though semantic checking may still reject it
// — such mutants surface as contained BuildFailure outcomes downstream.
//
// An error means no mutation was applicable (or the member's source
// stopped parsing, which the admission path makes impossible).
func Mutate(rng *rand.Rand, m, donor *Member) (string, *generator.Kernel, error) {
	prog, err := parser.Parse(m.Kernel.Src)
	if err != nil {
		return "", nil, fmt.Errorf("corpus: member %d no longer parses: %v", m.ID, err)
	}
	clone := ast.CloneProgram(prog)
	k := *m.Kernel
	var applied []string
	if len(k.Src) < mutantSrcCap {
		deadLen := k.DeadLen
		if deadLen <= 1 {
			deadLen = 16
		}
		if _, err := emi.Inject(clone, emi.InjectOptions{
			Seed:       rng.Int63(),
			Blocks:     2 + rng.Intn(3),
			Substitute: rng.Intn(2) == 1,
			DeadLen:    deadLen,
		}); err == nil {
			k.DeadLen = deadLen
			applied = append(applied, OriginEMI)
		}
	}
	stack, extra := 1+rng.Intn(2), 0
	for _, kind := range rng.Perm(3) {
		if extra >= stack {
			break
		}
		switch kind {
		case 0:
			if mutateConst(rng, clone) {
				applied = append(applied, OriginConst)
				extra++
			}
		case 1:
			if mutateOp(rng, clone) {
				applied = append(applied, OriginOp)
				extra++
			}
		case 2:
			if donor == nil || donor.ID == m.ID {
				continue
			}
			dprog, err := parser.Parse(donor.Kernel.Src)
			if err != nil {
				continue
			}
			if mutateSplice(rng, clone, dprog) {
				applied = append(applied, OriginSplice)
				extra++
			}
		}
	}
	if len(applied) == 0 {
		return "", nil, fmt.Errorf("corpus: no applicable mutation for member %d", m.ID)
	}
	k.Src = ast.Print(clone)
	return strings.Join(applied, "+"), &k, nil
}

// mutateConst perturbs one randomly chosen scalar integer literal,
// truncating the new value to the literal's type so the printed program
// round-trips exactly.
func mutateConst(rng *rand.Rand, p *ast.Program) bool {
	var lits []*ast.IntLit
	walkProgram(p, func(e ast.Expr) {
		if l, ok := e.(*ast.IntLit); ok {
			if _, isScalar := l.Type().(*cltypes.Scalar); isScalar {
				lits = append(lits, l)
			}
		}
	})
	if len(lits) == 0 {
		return false
	}
	l := lits[rng.Intn(len(lits))]
	st := l.Type().(*cltypes.Scalar)
	switch rng.Intn(4) {
	case 0:
		l.Val++
	case 1:
		l.Val--
	case 2:
		l.Val ^= 1 << uint(rng.Intn(16))
	default:
		l.Val = uint64(rng.Int63())
	}
	l.Val = cltypes.Trunc(l.Val, st)
	return true
}

// opCategories are the operator families a swap stays within: the
// swapped program type-checks whenever the original did (modulo pointer
// arithmetic, which semantic checking rejects as a contained build
// failure). Div/Mod stay out — the generated subset reaches them only
// through the checked safe_* wrappers.
var opCategories = [][]ast.BinOp{
	{ast.Add, ast.Sub, ast.Mul},
	{ast.And, ast.Or, ast.Xor},
	{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE},
	{ast.Shl, ast.Shr},
}

func opCategory(op ast.BinOp) []ast.BinOp {
	for _, cat := range opCategories {
		for _, o := range cat {
			if o == op {
				return cat
			}
		}
	}
	return nil
}

// mutateOp swaps one randomly chosen binary operator for another member
// of its category.
func mutateOp(rng *rand.Rand, p *ast.Program) bool {
	var bins []*ast.Binary
	walkProgram(p, func(e ast.Expr) {
		if b, ok := e.(*ast.Binary); ok && opCategory(b.Op) != nil {
			bins = append(bins, b)
		}
	})
	if len(bins) == 0 {
		return false
	}
	b := bins[rng.Intn(len(bins))]
	cat := opCategory(b.Op)
	next := cat[rng.Intn(len(cat))]
	if next == b.Op {
		next = cat[(indexOf(cat, b.Op)+1)%len(cat)]
	}
	b.Op = next
	return true
}

func indexOf(cat []ast.BinOp, op ast.BinOp) int {
	for i, o := range cat {
		if o == op {
			return i
		}
	}
	return 0
}

// mutateSplice inserts a cloned top-level statement from the donor
// kernel into the target kernel body at a random position, restricted to
// donor statements whose free variables are declared before the
// insertion point and whose calls resolve in the target (donor-private
// helper functions disqualify a statement; builtins pass). Declaration
// statements are excluded — the generators' name counters collide, so a
// spliced declaration would nearly always redeclare.
func mutateSplice(rng *rand.Rand, target, donor *ast.Program) bool {
	tk, dk := target.Kernel(), donor.Kernel()
	if tk == nil || tk.Body == nil || dk == nil || dk.Body == nil || len(dk.Body.Stmts) == 0 {
		return false
	}
	pos := rng.Intn(len(tk.Body.Stmts) + 1)
	avail := make(map[string]bool)
	for _, p := range tk.Params {
		avail[p.Name] = true
	}
	for _, g := range target.Globals {
		avail[g.Name] = true
	}
	for _, s := range tk.Body.Stmts[:pos] {
		if ds, ok := s.(*ast.DeclStmt); ok {
			avail[ds.Decl.Name] = true
		}
	}
	targetFuncs := make(map[string]bool)
	for _, f := range target.Funcs {
		targetFuncs[f.Name] = true
	}
	donorFuncs := make(map[string]bool)
	for _, f := range donor.Funcs {
		donorFuncs[f.Name] = true
	}
	var candidates []ast.Stmt
	for _, s := range dk.Body.Stmts {
		if _, isDecl := s.(*ast.DeclStmt); isDecl {
			continue
		}
		ok := true
		walkStmt(s, func(e ast.Expr) {
			switch x := e.(type) {
			case *ast.VarRef:
				if !avail[x.Name] {
					ok = false
				}
			case *ast.Call:
				// A call to a donor-defined helper cannot resolve in the
				// target; builtins (defined in neither program) can.
				if donorFuncs[x.Name] && !targetFuncs[x.Name] {
					ok = false
				}
			}
		})
		if ok {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return false
	}
	st := ast.CloneStmt(candidates[rng.Intn(len(candidates))])
	stmts := tk.Body.Stmts
	tk.Body.Stmts = append(stmts[:pos:pos], append([]ast.Stmt{st}, stmts[pos:]...)...)
	return true
}

// walkProgram visits every expression of every function body and global
// initializer.
func walkProgram(p *ast.Program, f func(ast.Expr)) {
	for _, g := range p.Globals {
		walkExpr(g.Init, f)
	}
	for _, fn := range p.Funcs {
		if fn.Body != nil {
			walkStmt(fn.Body, f)
		}
	}
}

func walkStmt(s ast.Stmt, f func(ast.Expr)) {
	switch x := s.(type) {
	case *ast.DeclStmt:
		walkExpr(x.Decl.Init, f)
	case *ast.ExprStmt:
		walkExpr(x.X, f)
	case *ast.Block:
		for _, st := range x.Stmts {
			walkStmt(st, f)
		}
	case *ast.If:
		walkExpr(x.Cond, f)
		walkStmt(x.Then, f)
		if x.Else != nil {
			walkStmt(x.Else, f)
		}
	case *ast.For:
		if x.Init != nil {
			walkStmt(x.Init, f)
		}
		walkExpr(x.Cond, f)
		walkExpr(x.Post, f)
		walkStmt(x.Body, f)
	case *ast.While:
		walkExpr(x.Cond, f)
		walkStmt(x.Body, f)
	case *ast.DoWhile:
		walkStmt(x.Body, f)
		walkExpr(x.Cond, f)
	case *ast.Return:
		walkExpr(x.X, f)
	}
}

func walkExpr(e ast.Expr, f func(ast.Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *ast.Unary:
		walkExpr(x.X, f)
	case *ast.Binary:
		walkExpr(x.L, f)
		walkExpr(x.R, f)
	case *ast.AssignExpr:
		walkExpr(x.LHS, f)
		walkExpr(x.RHS, f)
	case *ast.Cond:
		walkExpr(x.C, f)
		walkExpr(x.T, f)
		walkExpr(x.F, f)
	case *ast.Call:
		for _, a := range x.Args {
			walkExpr(a, f)
		}
	case *ast.Index:
		walkExpr(x.Base, f)
		walkExpr(x.Idx, f)
	case *ast.Member:
		walkExpr(x.Base, f)
	case *ast.Swizzle:
		walkExpr(x.Base, f)
	case *ast.VecLit:
		for _, el := range x.Elems {
			walkExpr(el, f)
		}
	case *ast.Cast:
		walkExpr(x.X, f)
	case *ast.InitList:
		for _, el := range x.Elems {
			walkExpr(el, f)
		}
	}
}
