// Package parser parses OpenCL C subset source into the AST. It
// implements a conventional recursive-descent parser with full C operator
// precedence, struct/union/typedef declarations, OpenCL address space
// qualifiers, vector literals and kernel qualifiers.
//
// Parse is the single entry point. Campaigns do not call it per
// configuration: the device layer memoizes parsed front ends per distinct
// source (device.FrontCache), so each kernel is parsed once no matter how
// many configurations compile it.
package parser
