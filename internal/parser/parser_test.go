package parser_test

import (
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/generator"
	"clfuzz/internal/parser"
)

// TestRoundTrip is the printer/parser fixpoint property: for generated
// kernels in every mode, print(parse(print(k))) == print(k). This is what
// lets each simulated compiler consume the textual kernel, as real OpenCL
// drivers do.
func TestRoundTrip(t *testing.T) {
	for _, mode := range generator.Modes {
		for seed := int64(0); seed < 15; seed++ {
			k := generator.Generate(generator.Options{Mode: mode, Seed: seed, MaxTotalThreads: 64, EMIBlocks: int(seed % 3)})
			p1, err := parser.Parse(k.Src)
			if err != nil {
				t.Fatalf("%s seed %d: parse: %v", mode, seed, err)
			}
			s1 := ast.Print(p1)
			p2, err := parser.Parse(s1)
			if err != nil {
				t.Fatalf("%s seed %d: reparse: %v", mode, seed, err)
			}
			s2 := ast.Print(p2)
			if s1 != s2 {
				t.Fatalf("%s seed %d: printer/parser round trip is not a fixpoint", mode, seed)
			}
		}
	}
}

// TestParseConstructs covers the language constructs the generator does
// not exercise uniformly.
func TestParseConstructs(t *testing.T) {
	srcs := []string{
		// typedef of anonymous struct, arrow access, address-of.
		`typedef struct { int x; int y; } S;
		 kernel void k(global ulong *out) { S s = {1,2}; S *p = &s; out[0] = (ulong)(p->x + p->y); }`,
		// union with tag, first-member init.
		`union U { uint a; long b; };
		 kernel void k(global ulong *out) { union U u = {3u}; out[0] = (ulong)u.a; }`,
		// vector literals, swizzles in both syntaxes, convert.
		`kernel void k(global ulong *out) {
		   int8 v = (int8)(1,2,3,4,5,6,7,8);
		   int4 w = (v).s0246;
		   out[0] = (ulong)(uint)(w.x + w.w + convert_int((v).s7));
		 }`,
		// do-while, comma, ternary, compound assignment, hex literal.
		`kernel void k(global ulong *out) {
		   uint x = 0xffu; int i = 0;
		   do { x >>= 1; i++; } while (i < 3);
		   out[0] = (i > 2) ? ((0 , (ulong)x)) : 1UL;
		 }`,
		// forward declaration and multi-declarator struct fields.
		`struct P { int a, b; short c; };
		 int f(void);
		 kernel void k(global ulong *out) { struct P p = {1,2,3}; out[0] = (ulong)(p.a + p.b + p.c + f()); }
		 int f(void) { return 4; }`,
		// address spaces on pointers and locals, constant globals.
		`constant int table[4] = {1, 2, 3, 4};
		 kernel void k(global ulong *out) {
		   local uint tmp[8];
		   tmp[get_linear_local_id()] = 1u;
		   barrier(CLK_LOCAL_MEM_FENCE);
		   out[get_linear_global_id()] = (ulong)(uint)table[1] + (ulong)tmp[0];
		 }`,
	}
	for i, src := range srcs {
		if _, err := parser.Parse(src); err != nil {
			t.Errorf("construct %d: %v", i, err)
		}
	}
}

// TestParseErrors checks that malformed programs are rejected with
// positioned diagnostics (build failures, not panics).
func TestParseErrors(t *testing.T) {
	srcs := []string{
		`kernel void k(global ulong *out) {`,            // unterminated block
		`kernel void k() { int 3x = 1; }`,               // bad declarator
		`kernel void k() { int x = ; }`,                 // missing initializer
		`struct S { int }; kernel void k() {}`,          // missing field name
		`kernel void k() { x???; }`,                     // garbage expression
		`kernel int k(global ulong *out) { return 1; }`, // handled by sema, must still parse or fail cleanly
		`kernel void k() { for (;;) }`,                  // missing body
		`typedef struct T2; kernel void k() {}`,         // bad typedef of unknown tag
	}
	for i, src := range srcs {
		_, err := parser.Parse(src)
		if err == nil && i != 5 {
			t.Errorf("malformed program %d unexpectedly parsed", i)
		}
	}
}

// TestLiteralTyping checks suffix-driven literal types survive the trip.
func TestLiteralTyping(t *testing.T) {
	e, err := parser.ParseExpr("4294967295u")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*ast.IntLit)
	if !ok || lit.Val != 0xffffffff {
		t.Fatalf("got %#v", e)
	}
	if lit.Type().String() != "uint" {
		t.Errorf("4294967295u typed as %s, want uint", lit.Type())
	}
	e, err = parser.ParseExpr("5000000000")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*ast.IntLit).Type().String() != "long" {
		t.Errorf("5000000000 typed as %s, want long", e.(*ast.IntLit).Type())
	}
}

// TestPrecedence checks the classic binding cases against the tree shape.
func TestPrecedence(t *testing.T) {
	e, err := parser.ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add, ok := e.(*ast.Binary)
	if !ok || add.Op != ast.Add {
		t.Fatalf("top is %T, want +", e)
	}
	if mul, ok := add.R.(*ast.Binary); !ok || mul.Op != ast.Mul {
		t.Error("* must bind tighter than +")
	}
	e, err = parser.ParseExpr("1 << 2 + 3")
	if err != nil {
		t.Fatal(err)
	}
	if sh, ok := e.(*ast.Binary); !ok || sh.Op != ast.Shl {
		t.Error("+ must bind tighter than <<")
	}
	e, err = parser.ParseExpr("a = b , c")
	if err != nil {
		t.Fatal(err)
	}
	if cm, ok := e.(*ast.Binary); !ok || cm.Op != ast.Comma {
		t.Error("comma must bind loosest")
	}
}
