package parser

import (
	"fmt"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/lexer"
)

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Parse parses a translation unit.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, typedefs: map[string]cltypes.Type{}, structs: map[string]*cltypes.StructT{}}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseExpr parses a single expression (used in tests and by the reducer).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, typedefs: map[string]cltypes.Type{}, structs: map[string]*cltypes.StructT{}}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != lexer.EOF {
		return nil, p.errf("trailing tokens after expression")
	}
	return e, nil
}

type parser struct {
	toks     []lexer.Token
	pos      int
	typedefs map[string]cltypes.Type
	structs  map[string]*cltypes.StructT
	prog     *ast.Program
}

func (p *parser) peek() lexer.Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) lexer.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) next() lexer.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) accept(text string) bool {
	t := p.peek()
	if (t.Kind == lexer.Punct || t.Kind == lexer.Keyword) && t.Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.peek().Text)
	}
	return nil
}

func (p *parser) isKw(text string) bool {
	t := p.peek()
	return t.Kind == lexer.Keyword && t.Text == text
}

// ---- Types ----

// typeStart reports whether the token at offset n begins a type specifier.
func (p *parser) typeStart(n int) bool {
	t := p.peekN(n)
	switch t.Kind {
	case lexer.Keyword:
		switch t.Text {
		case "struct", "union", "const", "volatile", "global", "local", "constant", "private", "void":
			return true
		}
		return false
	case lexer.Ident:
		if _, ok := cltypes.ScalarByName(t.Text); ok {
			return true
		}
		if _, ok := cltypes.VectorByName(t.Text); ok {
			return true
		}
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

// typeSpec holds the parsed leading type specifier and qualifiers.
type typeSpec struct {
	base     cltypes.Type
	space    cltypes.AddrSpace
	isConst  bool
	volatile bool
}

func (p *parser) parseTypeSpec() (typeSpec, error) {
	ts := typeSpec{base: nil, space: cltypes.Private}
	for {
		t := p.peek()
		if t.Kind == lexer.Keyword {
			switch t.Text {
			case "const":
				p.next()
				ts.isConst = true
				continue
			case "volatile":
				p.next()
				ts.volatile = true
				continue
			case "global":
				p.next()
				ts.space = cltypes.Global
				continue
			case "local":
				p.next()
				ts.space = cltypes.Local
				continue
			case "constant":
				p.next()
				ts.space = cltypes.Constant
				continue
			case "private":
				p.next()
				ts.space = cltypes.Private
				continue
			case "void":
				p.next()
				ts.base = cltypes.TVoid
				return ts, nil
			case "struct", "union":
				isUnion := t.Text == "union"
				p.next()
				if p.peek().Kind != lexer.Ident {
					return ts, p.errf("expected struct/union tag")
				}
				name := p.next().Text
				st, ok := p.structs[name]
				if !ok {
					return ts, p.errf("unknown %s %s", t.Text, name)
				}
				if st.IsUnion != isUnion {
					return ts, p.errf("tag %s declared with different aggregate kind", name)
				}
				ts.base = st
				return ts, nil
			}
		}
		break
	}
	t := p.peek()
	if t.Kind != lexer.Ident {
		return ts, p.errf("expected type name, found %q", t.Text)
	}
	if s, ok := cltypes.ScalarByName(t.Text); ok {
		p.next()
		ts.base = s
		return ts, nil
	}
	if v, ok := cltypes.VectorByName(t.Text); ok {
		p.next()
		ts.base = v
		return ts, nil
	}
	if td, ok := p.typedefs[t.Text]; ok {
		p.next()
		ts.base = td
		return ts, nil
	}
	return ts, p.errf("unknown type %q", t.Text)
}

// parseDeclarator parses *-prefixes, the name, and array suffixes, applied
// to the base type.
func (p *parser) parseDeclarator(ts typeSpec) (string, cltypes.Type, error) {
	stars := 0
	for p.accept("*") {
		stars++
	}
	if p.peek().Kind != lexer.Ident {
		return "", nil, p.errf("expected declarator name, found %q", p.peek().Text)
	}
	name := p.next().Text
	var dims []int
	for p.accept("[") {
		t := p.peek()
		if t.Kind != lexer.Number {
			return "", nil, p.errf("expected constant array length")
		}
		p.next()
		dims = append(dims, int(t.Val))
		if err := p.expect("]"); err != nil {
			return "", nil, err
		}
	}
	typ := ts.base
	for i := 0; i < stars; i++ {
		space := cltypes.Private
		if i == stars-1 {
			space = ts.space
		}
		typ = &cltypes.Pointer{Elem: typ, Space: space}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = cltypes.ArrayOf(typ, dims[i])
	}
	return name, typ, nil
}

// ---- Top level ----

func (p *parser) program() (*ast.Program, error) {
	p.prog = &ast.Program{}
	for p.peek().Kind != lexer.EOF {
		switch {
		case p.isKw("typedef"):
			if err := p.typedefDecl(); err != nil {
				return nil, err
			}
		case p.isKw("struct") || p.isKw("union"):
			// Either a struct definition or a global declaration whose type
			// is a previously defined struct. Definition iff tag followed
			// by '{'.
			if p.peekN(1).Kind == lexer.Ident && p.peekN(2).Text == "{" {
				if err := p.structDef(); err != nil {
					return nil, err
				}
				continue
			}
			if err := p.topDecl(); err != nil {
				return nil, err
			}
		default:
			if err := p.topDecl(); err != nil {
				return nil, err
			}
		}
	}
	return p.prog, nil
}

func (p *parser) typedefDecl() error {
	p.next() // typedef
	var st *cltypes.StructT
	if p.isKw("struct") || p.isKw("union") {
		isUnion := p.peek().Text == "union"
		p.next()
		tag := ""
		if p.peek().Kind == lexer.Ident {
			tag = p.next().Text
		}
		if p.peek().Text != "{" {
			// typedef of an existing struct: typedef struct S T;
			if tag == "" {
				return p.errf("expected struct body or tag in typedef")
			}
			existing, ok := p.structs[tag]
			if !ok {
				return p.errf("unknown struct %s in typedef", tag)
			}
			st = existing
		} else {
			var err error
			st, err = p.structBody(tag, isUnion)
			if err != nil {
				return err
			}
		}
		if p.peek().Kind != lexer.Ident {
			return p.errf("expected typedef name")
		}
		name := p.next().Text
		if st.Name == "" {
			st.Name = name
			p.structs[name] = st
		}
		p.typedefs[name] = st
		return p.expect(";")
	}
	ts, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	if p.peek().Kind != lexer.Ident {
		return p.errf("expected typedef name")
	}
	name := p.next().Text
	p.typedefs[name] = ts.base
	return p.expect(";")
}

func (p *parser) structDef() error {
	isUnion := p.peek().Text == "union"
	p.next()
	if p.peek().Kind != lexer.Ident {
		return p.errf("expected struct tag")
	}
	tag := p.next().Text
	st, err := p.structBody(tag, isUnion)
	if err != nil {
		return err
	}
	_ = st
	return p.expect(";")
}

// structBody parses "{ fields }" and registers the type under tag (if any).
func (p *parser) structBody(tag string, isUnion bool) (*cltypes.StructT, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &cltypes.StructT{Name: tag, IsUnion: isUnion}
	if tag != "" {
		// Register before parsing fields so self-referential pointers work.
		p.structs[tag] = st
	}
	for !p.accept("}") {
		ts, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		for {
			name, typ, err := p.parseDeclarator(ts)
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, cltypes.Field{Name: name, Type: typ, Volatile: ts.volatile})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if tag != "" {
		p.prog.Structs = append(p.prog.Structs, st)
	} else {
		// Anonymous struct in a typedef: record once named.
		p.prog.Structs = append(p.prog.Structs, st)
	}
	return st, nil
}

// topDecl parses a function definition/declaration or a program-scope
// variable.
func (p *parser) topDecl() error {
	isKernel := false
	if p.accept("kernel") {
		isKernel = true
	}
	ts, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	stars := 0
	for p.accept("*") {
		stars++
	}
	if p.peek().Kind != lexer.Ident {
		return p.errf("expected declarator name, found %q", p.peek().Text)
	}
	name := p.next().Text
	if p.peek().Text == "(" {
		ret := ts.base
		for i := 0; i < stars; i++ {
			ret = cltypes.PtrTo(ret)
		}
		return p.funcRest(name, ret, isKernel)
	}
	if isKernel {
		return p.errf("kernel qualifier on non-function")
	}
	// Program-scope variable (constant address space in OpenCL 1.x).
	var dims []int
	for p.accept("[") {
		t := p.peek()
		if t.Kind != lexer.Number {
			return p.errf("expected constant array length")
		}
		p.next()
		dims = append(dims, int(t.Val))
		if err := p.expect("]"); err != nil {
			return err
		}
	}
	typ := ts.base
	for i := 0; i < stars; i++ {
		typ = cltypes.PtrTo(typ)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = cltypes.ArrayOf(typ, dims[i])
	}
	d := &ast.VarDecl{Name: name, Type: typ, Space: ts.space, Volatile: ts.volatile, Const: ts.isConst}
	if p.accept("=") {
		init, err := p.initializer()
		if err != nil {
			return err
		}
		d.Init = init
	}
	p.prog.Globals = append(p.prog.Globals, d)
	return p.expect(";")
}

func (p *parser) funcRest(name string, ret cltypes.Type, isKernel bool) error {
	if err := p.expect("("); err != nil {
		return err
	}
	f := &ast.FuncDecl{Name: name, Ret: ret, IsKernel: isKernel}
	if p.isKw("void") && p.peekN(1).Text == ")" {
		p.next()
	}
	for p.peek().Text != ")" {
		ts, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		pname, ptyp, err := p.parseDeclarator(ts)
		if err != nil {
			return err
		}
		f.Params = append(f.Params, ast.Param{Name: pname, Type: ptyp})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	if p.accept(";") {
		p.prog.Funcs = append(p.prog.Funcs, f) // forward declaration
		return nil
	}
	body, err := p.blockStmt()
	if err != nil {
		return err
	}
	f.Body = body
	p.prog.Funcs = append(p.prog.Funcs, f)
	return nil
}

// ---- Statements ----

func (p *parser) blockStmt() (*ast.Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &ast.Block{}
	for !p.accept("}") {
		if p.peek().Kind == lexer.EOF {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	t := p.peek()
	switch {
	case t.Text == "{" && t.Kind == lexer.Punct:
		return p.blockStmt()
	case p.isKw("if"):
		return p.ifStmt()
	case p.isKw("for"):
		return p.forStmt()
	case p.isKw("while"):
		return p.whileStmt()
	case p.isKw("do"):
		return p.doStmt()
	case p.isKw("break"):
		p.next()
		return &ast.Break{}, p.expect(";")
	case p.isKw("continue"):
		p.next()
		return &ast.Continue{}, p.expect(";")
	case p.isKw("return"):
		p.next()
		if p.accept(";") {
			return &ast.Return{}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.Return{X: e}, p.expect(";")
	case t.Text == ";" && t.Kind == lexer.Punct:
		p.next()
		return &ast.Empty{}, nil
	case p.typeStart(0):
		d, err := p.localDecl()
		if err != nil {
			return nil, err
		}
		return d, p.expect(";")
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.ExprStmt{X: e}, p.expect(";")
	}
}

func (p *parser) localDecl() (*ast.DeclStmt, error) {
	ts, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	name, typ, err := p.parseDeclarator(ts)
	if err != nil {
		return nil, err
	}
	d := &ast.VarDecl{Name: name, Type: typ, Space: ts.space, Volatile: ts.volatile, Const: ts.isConst}
	if p.accept("=") {
		init, err := p.initializer()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return &ast.DeclStmt{Decl: d}, nil
}

func (p *parser) initializer() (ast.Expr, error) {
	if p.peek().Text == "{" && p.peek().Kind == lexer.Punct {
		p.next()
		il := &ast.InitList{}
		for p.peek().Text != "}" {
			e, err := p.initializer()
			if err != nil {
				return nil, err
			}
			il.Elems = append(il.Elems, e)
			if !p.accept(",") {
				break
			}
		}
		return il, p.expect("}")
	}
	return p.assignExpr()
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	st := &ast.If{Cond: cond, Then: then}
	if p.accept("else") {
		if p.isKw("if") {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.stmtAsBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// stmtAsBlock parses a statement and wraps non-block statements in a block,
// normalizing the tree (the printer always emits braces).
func (p *parser) stmtAsBlock() (*ast.Block, error) {
	if p.peek().Text == "{" && p.peek().Kind == lexer.Punct {
		return p.blockStmt()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &ast.Block{Stmts: []ast.Stmt{s}}, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ast.For{}
	switch {
	case p.accept(";"):
		st.Init = nil
	case p.typeStart(0):
		d, err := p.localDecl()
		if err != nil {
			return nil, err
		}
		st.Init = d
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Init = &ast.ExprStmt{X: e}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = c
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if p.peek().Text != ")" {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Post = e
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &ast.While{Cond: cond, Body: body}, nil
}

func (p *parser) doStmt() (ast.Stmt, error) {
	p.next()
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expect("while"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &ast.DoWhile{Body: body, Cond: cond}, p.expect(";")
}

// ---- Expressions ----

// expr parses a full expression including the comma operator.
func (p *parser) expr() (ast.Expr, error) {
	e, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == lexer.Punct && p.peek().Text == "," {
		p.next()
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		e = &ast.Binary{Op: ast.Comma, L: e, R: r}
	}
	return e, nil
}

var assignOps = map[string]ast.AssignOp{
	"=": ast.Assign, "+=": ast.AddAssign, "-=": ast.SubAssign,
	"*=": ast.MulAssign, "/=": ast.DivAssign, "%=": ast.ModAssign,
	"&=": ast.AndAssign, "|=": ast.OrAssign, "^=": ast.XorAssign,
	"<<=": ast.ShlAssign, ">>=": ast.ShrAssign,
}

func (p *parser) assignExpr() (ast.Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == lexer.Punct {
		if op, ok := assignOps[t.Text]; ok {
			p.next()
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &ast.AssignExpr{Op: op, LHS: lhs, RHS: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) condExpr() (ast.Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == lexer.Punct && p.peek().Text == "?" {
		p.next()
		t, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Cond{C: c, T: t, F: f}, nil
	}
	return c, nil
}

// binary operator precedence levels, loosest first.
var precLevels = [][]struct {
	text string
	op   ast.BinOp
}{
	{{"||", ast.LOr}},
	{{"&&", ast.LAnd}},
	{{"|", ast.Or}},
	{{"^", ast.Xor}},
	{{"&", ast.And}},
	{{"==", ast.EQ}, {"!=", ast.NE}},
	{{"<=", ast.LE}, {">=", ast.GE}, {"<", ast.LT}, {">", ast.GT}},
	{{"<<", ast.Shl}, {">>", ast.Shr}},
	{{"+", ast.Add}, {"-", ast.Sub}},
	{{"*", ast.Mul}, {"/", ast.Div}, {"%", ast.Mod}},
}

func (p *parser) binExpr(level int) (ast.Expr, error) {
	if level >= len(precLevels) {
		return p.unaryExpr()
	}
	l, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != lexer.Punct {
			return l, nil
		}
		matched := false
		for _, cand := range precLevels[level] {
			if t.Text == cand.text {
				p.next()
				r, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				l = &ast.Binary{Op: cand.op, L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

var prefixOps = map[string]ast.UnOp{
	"-": ast.Neg, "+": ast.Pos, "~": ast.BitNot, "!": ast.LogNot,
	"&": ast.AddrOf, "*": ast.Deref,
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	t := p.peek()
	if t.Kind == lexer.Punct {
		if t.Text == "++" || t.Text == "--" {
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			op := ast.PreInc
			if t.Text == "--" {
				op = ast.PreDec
			}
			return &ast.Unary{Op: op, X: x}, nil
		}
		if op, ok := prefixOps[t.Text]; ok {
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &ast.Unary{Op: op, X: x}, nil
		}
		if t.Text == "(" && p.typeStart(1) {
			return p.castExpr()
		}
	}
	return p.postfixExpr()
}

// castExpr parses "(type)" followed by either a parenthesized element list
// (vector literal) or a unary expression (cast).
func (p *parser) castExpr() (ast.Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ts, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	typ := ts.base
	for p.accept("*") {
		typ = &cltypes.Pointer{Elem: typ, Space: ts.space}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if vt, ok := typ.(*cltypes.Vector); ok && p.peek().Text == "(" {
		// Vector literal: (int4)(e, e, ...).
		p.next()
		vl := &ast.VecLit{VT: vt}
		for p.peek().Text != ")" {
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			vl.Elems = append(vl.Elems, e)
			if !p.accept(",") {
				break
			}
		}
		return vl, p.expect(")")
	}
	x, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Cast{To: typ, X: x}, nil
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != lexer.Punct {
			return e, nil
		}
		switch t.Text {
		case "[":
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &ast.Index{Base: e, Idx: idx}
		case ".":
			p.next()
			if p.peek().Kind != lexer.Ident {
				return nil, p.errf("expected member name after '.'")
			}
			e = &ast.Member{Base: e, Name: p.next().Text}
		case "->":
			p.next()
			if p.peek().Kind != lexer.Ident {
				return nil, p.errf("expected member name after '->'")
			}
			e = &ast.Member{Base: e, Name: p.next().Text, Arrow: true}
		case "++":
			p.next()
			e = &ast.Unary{Op: ast.PostInc, X: e}
		case "--":
			p.next()
			e = &ast.Unary{Op: ast.PostDec, X: e}
		case "(":
			vr, ok := e.(*ast.VarRef)
			if !ok {
				return nil, p.errf("called object is not a function name")
			}
			p.next()
			call := &ast.Call{Name: vr.Name}
			for p.peek().Text != ")" {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.Number:
		p.next()
		lit := &ast.IntLit{Val: t.Val}
		switch t.Suffix {
		case "":
			if t.Val <= 0x7fffffff {
				lit.SetType(cltypes.TInt)
			} else {
				lit.SetType(cltypes.TLong)
			}
		case "u":
			if t.Val <= 0xffffffff {
				lit.SetType(cltypes.TUInt)
			} else {
				lit.SetType(cltypes.TULong)
			}
		case "l":
			lit.SetType(cltypes.TLong)
		case "ul":
			lit.SetType(cltypes.TULong)
		}
		return lit, nil
	case lexer.Ident:
		p.next()
		return ast.NewVarRef(t.Text), nil
	case lexer.Punct:
		if t.Text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}
