package benchmarks_test

import (
	"testing"

	"clfuzz/internal/benchmarks"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// TestBenchmarksCompileAndRun checks every port compiles on the reference
// configuration and executes to completion at both optimization levels
// with identical results.
func TestBenchmarksCompileAndRun(t *testing.T) {
	ref := device.Reference()
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			var outs [][]uint64
			for _, optimize := range []bool{false, true} {
				cr := ref.Compile(b.Src, optimize)
				if cr.Outcome != device.OK {
					t.Fatalf("compile (opt=%v): %s", optimize, cr.Msg)
				}
				args, result := b.MakeArgs()
				rr := cr.Kernel.Run(b.ND, args, result, device.RunOptions{})
				if rr.Outcome != device.OK {
					t.Fatalf("run (opt=%v): %s %s", optimize, rr.Outcome, rr.Msg)
				}
				outs = append(outs, rr.Output)
			}
			if !b.HasRace && !oracle.Equal(outs[0], outs[1]) {
				t.Errorf("optimization level changed the result of a race-free benchmark")
			}
		})
	}
}

// TestBenchmarkRaces reproduces the §2.4 finding: the race checker flags
// data races in the spmv and myocyte ports and in no other benchmark.
// (The paper wasted significant reduction effort before discovering these
// races; the checker finds them directly.)
func TestBenchmarkRaces(t *testing.T) {
	ref := device.Reference()
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cr := ref.Compile(b.Src, false)
			if cr.Outcome != device.OK {
				t.Fatalf("compile: %s", cr.Msg)
			}
			args, result := b.MakeArgs()
			rr := cr.Kernel.Run(b.ND, args, result, device.RunOptions{CheckRaces: true})
			raced := rr.Outcome == device.Crash && len(rr.Msg) >= 9 && rr.Msg[:9] == "data race"
			if b.HasRace && !raced {
				t.Errorf("expected the race checker to flag %s, got %s %q", b.Name, rr.Outcome, rr.Msg)
			}
			if !b.HasRace && rr.Outcome != device.OK {
				t.Errorf("race checker rejected race-free benchmark %s: %s %q", b.Name, rr.Outcome, rr.Msg)
			}
		})
	}
}

// TestTable2Static checks the Table 2 static columns of the ports.
func TestTable2Static(t *testing.T) {
	all := benchmarks.All()
	if len(all) != 10 {
		t.Fatalf("expected 10 benchmarks, have %d", len(all))
	}
	wantFP := map[string]bool{
		"bfs": false, "cutcp": true, "lbm": true, "sad": false, "spmv": true,
		"tpacf": true, "heartwall": true, "hotspot": true, "myocyte": true,
		"pathfinder": false,
	}
	for _, b := range all {
		if b.PaperUsesFP != wantFP[b.Name] {
			t.Errorf("%s: FP column = %v, Table 2 says %v", b.Name, b.PaperUsesFP, wantFP[b.Name])
		}
		if b.LoC() < 10 {
			t.Errorf("%s: suspiciously small port (%d LoC)", b.Name, b.LoC())
		}
		if prog, err := parser.Parse(b.Src); err != nil {
			t.Errorf("%s: parse: %v", b.Name, err)
		} else if _, _, err := sema.Check(prog, 0); err != nil {
			t.Errorf("%s: sema: %v", b.Name, err)
		}
	}
	if len(benchmarks.Racy()) != 2 {
		t.Errorf("expected exactly spmv and myocyte to carry races")
	}
	if len(benchmarks.Clean()) != 8 {
		t.Errorf("expected 8 clean benchmarks for Table 3")
	}
}

// TestBenchmarkDeterminism runs every clean benchmark twice with fresh
// buffers; results must agree (the §3.2 deterministic-output requirement).
func TestBenchmarkDeterminism(t *testing.T) {
	ref := device.Reference()
	for _, b := range benchmarks.Clean() {
		cr := ref.Compile(b.Src, true)
		if cr.Outcome != device.OK {
			t.Fatalf("%s: compile: %s", b.Name, cr.Msg)
		}
		var outs [][]uint64
		for i := 0; i < 2; i++ {
			args, result := b.MakeArgs()
			rr := cr.Kernel.Run(b.ND, args, result, device.RunOptions{})
			if rr.Outcome != device.OK {
				t.Fatalf("%s: run %d: %s", b.Name, i, rr.Msg)
			}
			outs = append(outs, rr.Output)
		}
		if !oracle.Equal(outs[0], outs[1]) {
			t.Errorf("%s: nondeterministic output", b.Name)
		}
	}
}

var _ = exec.NDRange{}
