// Package benchmarks provides integer ports of the 10 Parboil and Rodinia
// benchmarks of the paper's Table 2, written in the OpenCL C subset, with
// host drivers that build deterministic inputs.
//
// Substitution note: the original benchmarks are CUDA/OpenCL
// programs, several using floating point. The ports preserve each
// benchmark's computational structure — CSR sparse matrix-vector
// products, BFS frontiers, stencil sweeps, DP wavefronts, histogramming,
// block matching — using integer arithmetic (the paper itself preferred
// non-floating-point benchmarks to avoid fast-math effects, §7.2).
// Crucially, the spmv and myocyte ports preserve the data races the paper
// discovered in the originals (§2.4); the executor's race checker
// rediscovers them, and they are excluded from the Table 3 campaign, just
// as in the paper.
//
// All returns every benchmark; Clean and Racy split them by the race
// verdict. Each Benchmark carries source, launch geometry and a MakeArgs
// factory. File map: benchmarks.go (Parboil ports and plumbing),
// rodinia.go (Rodinia ports).
package benchmarks
