package benchmarks

import (
	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
)

// Heartwall ports Rodinia heartwall: template tracking in ultrasound
// frames. Each thread correlates one sample point's window against a
// template; the original's 1060-line kernel reduces to its correlation
// core here.
func Heartwall() *Benchmark {
	const pointsHW = 40
	const win = 12
	const frameHW = 256
	b := &Benchmark{
		Suite: "Rodinia", Name: "heartwall", Description: "Medical imaging",
		PaperKernels: 1, PaperUsesFP: true,
		ND: exec.NDRange{Global: [3]int{pointsHW, 1, 1}, Local: [3]int{8, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *frame, global int *tmplt, global int *posx, int framelen, int winlen) {
    size_t tid = get_linear_global_id();
    int p = (int)tid;
    int base = posx[p];
    int bestscore = -2147483647;
    int bestoff = 0;
    for (int off = 0; off < 5; off++) {
        int score = 0;
        for (int i = 0; i < winlen; i++) {
            int fi = ((base + off) + i) % framelen;
            int fv = frame[fi];
            int tv = tmplt[i];
            score = (0 , safe_add(score, safe_mul(fv, tv)));
            score = safe_sub(score, safe_div(safe_add(safe_mul(fv, fv), safe_mul(tv, tv)), 8));
        }
        if (score > bestscore) { bestscore = score; bestoff = off; }
    }
    out[tid] = (ulong)(uint)safe_add(safe_mul(bestoff, 65536), (int)(((uint)bestscore) & 65535u));
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(77)
		frame := exec.NewBuffer(cltypes.TInt, frameHW)
		tmplt := exec.NewBuffer(cltypes.TInt, win)
		posx := exec.NewBuffer(cltypes.TInt, pointsHW)
		for i := 0; i < frameHW; i++ {
			frame.SetScalar(i, uint64(rng.intn(64)))
		}
		for i := 0; i < win; i++ {
			tmplt.SetScalar(i, uint64(rng.intn(64)))
		}
		for i := 0; i < pointsHW; i++ {
			posx.SetScalar(i, uint64(rng.intn(frameHW)))
		}
		out := exec.NewBuffer(cltypes.TULong, pointsHW)
		return exec.Args{
			"out": {Buf: out}, "frame": {Buf: frame}, "tmplt": {Buf: tmplt},
			"posx": {Buf: posx}, "framelen": {Scalar: frameHW}, "winlen": {Scalar: win},
		}, out
	}
	return b
}

// Hotspot ports Rodinia hotspot: an iterative thermal stencil with a
// local-memory tile and barrier synchronization within the work-group.
func Hotspot() *Benchmark {
	const cellsHS = 64
	b := &Benchmark{
		Suite: "Rodinia", Name: "hotspot", Description: "Thermal physics simulation",
		PaperKernels: 1, PaperUsesFP: true,
		ND: exec.NDRange{Global: [3]int{cellsHS, 1, 1}, Local: [3]int{cellsHS, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *temp, global int *power, int ncells, int steps) {
    local int tile[64];
    size_t tid = get_linear_global_id();
    int c = (int)tid;
    tile[c] = (0 , temp[c]);
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 0; s < steps; s++) {
        int left = tile[((c + ncells) - 1) % ncells];
        int right = tile[(c + 1) % ncells];
        int self = tile[c];
        barrier(CLK_LOCAL_MEM_FENCE);
        int delta = safe_div(safe_sub(safe_add(left, right), safe_mul(self, 2)), 4);
        tile[c] = safe_add(safe_add(self, delta), safe_div(power[c], 16));
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[tid] = (ulong)(uint)tile[c];
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(88)
		temp := exec.NewBuffer(cltypes.TInt, cellsHS)
		power := exec.NewBuffer(cltypes.TInt, cellsHS)
		for i := 0; i < cellsHS; i++ {
			temp.SetScalar(i, uint64(300+rng.intn(100)))
			power.SetScalar(i, uint64(rng.intn(64)))
		}
		out := exec.NewBuffer(cltypes.TULong, cellsHS)
		return exec.Args{
			"out": {Buf: out}, "temp": {Buf: temp}, "power": {Buf: power},
			"ncells": {Scalar: cellsHS}, "steps": {Scalar: 6},
		}, out
	}
	return b
}

// Myocyte ports Rodinia myocyte: cardiac cell ODE integration. The port
// preserves the data race the paper discovered (§2.4): each thread reads a
// neighbour's rate entry while the neighbour may still be writing it — no
// barrier separates the accesses.
func Myocyte() *Benchmark {
	const statesMC = 32
	b := &Benchmark{
		Suite: "Rodinia", Name: "myocyte", Description: "Medical simulation",
		PaperKernels: 1, PaperUsesFP: true, HasRace: true,
		ND: exec.NDRange{Global: [3]int{statesMC, 1, 1}, Local: [3]int{statesMC, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *y, global int *params, global int *rates, int nstates, int steps) {
    size_t tid = get_linear_global_id();
    int s = (int)tid;
    int state = y[s];
    for (int it = 0; it < steps; it++) {
        int coupling = rates[(s + 1) % nstates];
        rates[s] = safe_add(safe_mul(params[s], state), safe_div(coupling, 4));
        state = safe_add(state, safe_div(rates[s], 8));
    }
    out[tid] = (ulong)(uint)state;
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(99)
		y := exec.NewBuffer(cltypes.TInt, statesMC)
		params := exec.NewBuffer(cltypes.TInt, statesMC)
		rates := exec.NewBuffer(cltypes.TInt, statesMC)
		for i := 0; i < statesMC; i++ {
			y.SetScalar(i, uint64(rng.intn(128)))
			params.SetScalar(i, uint64(1+rng.intn(8)))
		}
		out := exec.NewBuffer(cltypes.TULong, statesMC)
		return exec.Args{
			"out": {Buf: out}, "y": {Buf: y}, "params": {Buf: params},
			"rates": {Buf: rates}, "nstates": {Scalar: statesMC}, "steps": {Scalar: 5},
		}, out
	}
	return b
}

// Pathfinder ports Rodinia pathfinder: dynamic-programming wavefront over
// a cost grid, one row per step, with local-memory double buffering and
// barriers.
func Pathfinder() *Benchmark {
	const colsPF = 64
	const rowsPF = 8
	b := &Benchmark{
		Suite: "Rodinia", Name: "pathfinder", Description: "Dynamic programming",
		PaperKernels: 1, PaperUsesFP: false,
		ND: exec.NDRange{Global: [3]int{colsPF, 1, 1}, Local: [3]int{colsPF, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *wall, int ncols, int nrows) {
    local int src[64];
    local int dst[64];
    size_t tid = get_linear_global_id();
    int j = (int)tid;
    src[j] = wall[j];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int i = 1; i < nrows; i++) {
        int center = (0 , src[j]);
        int left = center;
        int right = center;
        if (j > 0) { left = src[j - 1]; }
        if (j < (ncols - 1)) { right = src[j + 1]; }
        int best = min(min(left, right), center);
        dst[j] = safe_add(wall[safe_add(safe_mul(i, ncols), j)], best);
        barrier(CLK_LOCAL_MEM_FENCE);
        src[j] = dst[j];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[tid] = (ulong)(uint)src[j];
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(111)
		wall := exec.NewBuffer(cltypes.TInt, colsPF*rowsPF)
		for i := 0; i < colsPF*rowsPF; i++ {
			wall.SetScalar(i, uint64(rng.intn(32)))
		}
		out := exec.NewBuffer(cltypes.TULong, colsPF)
		return exec.Args{
			"out": {Buf: out}, "wall": {Buf: wall},
			"ncols": {Scalar: colsPF}, "nrows": {Scalar: rowsPF},
		}, out
	}
	return b
}
