package benchmarks

import (
	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
	"strings"
)

// Benchmark is one Table 2 row.
type Benchmark struct {
	Suite       string
	Name        string
	Description string
	// PaperKernels and PaperUsesFP reproduce the static columns of
	// Table 2 (kernel count and floating-point use in the original).
	PaperKernels int
	PaperUsesFP  bool
	// HasRace marks the two benchmarks with the data races the paper
	// found (§2.4).
	HasRace bool
	Src     string
	ND      exec.NDRange
	// MakeArgs builds fresh input buffers and returns (args, result).
	MakeArgs func() (exec.Args, *exec.Buffer)
}

// LoC returns the kernel source line count (the Table 2 LoC column,
// counted over our ports).
func (b *Benchmark) LoC() int {
	n := 0
	for _, line := range strings.Split(b.Src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// lcg is the deterministic input generator used by every host driver.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l >> 17)
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// All returns the ten benchmarks in Table 2 order.
func All() []*Benchmark {
	return []*Benchmark{
		BFS(), CUTCP(), LBM(), SAD(), SPMV(), TPACF(),
		Heartwall(), Hotspot(), Myocyte(), Pathfinder(),
	}
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Racy returns the benchmarks with preserved data races (§2.4).
func Racy() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.HasRace {
			out = append(out, b)
		}
	}
	return out
}

// Clean returns the benchmarks without races — the set Table 3 reports on.
func Clean() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if !b.HasRace {
			out = append(out, b)
		}
	}
	return out
}

// BFS ports Parboil bfs: a frontier breadth-first search over a CSR graph.
// One work-group; threads own nodes and advance the frontier level by
// level, synchronizing with barriers.
func BFS() *Benchmark {
	const n = 64
	b := &Benchmark{
		Suite: "Parboil", Name: "bfs", Description: "Graph breadth-first search",
		PaperKernels: 1, PaperUsesFP: false,
		ND: exec.NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{n, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *rowp, global int *edges, global int *level, global int *frontier) {
    size_t tid = get_linear_global_id();
    int node = (int)tid;
    for (int depth = 0; depth < 32; depth++) {
        barrier(CLK_GLOBAL_MEM_FENCE);
        int active = frontier[0];
        barrier(CLK_GLOBAL_MEM_FENCE);
        if (active == 0) { break; }
        if (tid == 0UL) { frontier[0] = 0; }
        barrier(CLK_GLOBAL_MEM_FENCE);
        int mylevel = atomic_add(&level[node], 0);
        if (mylevel == depth) {
            int first = rowp[node];
            int last = rowp[node + 1];
            for (int e = first; e < last; e++) {
                int nb = edges[e];
                int old = atomic_cmpxchg(&level[nb], -1, depth + 1);
                if (old == -1) { atomic_xchg(&frontier[0], 1); }
            }
        }
        barrier(CLK_GLOBAL_MEM_FENCE);
    }
    barrier(CLK_GLOBAL_MEM_FENCE);
    out[tid] = (ulong)(uint)level[node];
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(11)
		deg := 3
		rowp := exec.NewBuffer(cltypes.TInt, n+1)
		edges := exec.NewBuffer(cltypes.TInt, n*deg)
		for i := 0; i <= n; i++ {
			rowp.SetScalar(i, uint64(i*deg))
		}
		for i := 0; i < n*deg; i++ {
			edges.SetScalar(i, uint64(rng.intn(n)))
		}
		level := exec.NewBuffer(cltypes.TInt, n)
		for i := 0; i < n; i++ {
			level.SetScalar(i, ^uint64(0)) // -1
		}
		level.SetScalar(0, 0)
		frontier := exec.NewBuffer(cltypes.TInt, 1)
		frontier.SetScalar(0, 1)
		out := exec.NewBuffer(cltypes.TULong, n)
		return exec.Args{
			"out": {Buf: out}, "rowp": {Buf: rowp}, "edges": {Buf: edges},
			"level": {Buf: level}, "frontier": {Buf: frontier},
		}, out
	}
	return b
}

// CUTCP ports Parboil cutcp: cutoff-limited Coulombic potential on a grid.
// Integer substitution: charge/(1+distance^2) in fixed-point.
func CUTCP() *Benchmark {
	const grid = 48
	const atoms = 32
	b := &Benchmark{
		Suite: "Parboil", Name: "cutcp", Description: "Molecular modeling simulation",
		PaperKernels: 1, PaperUsesFP: true,
		ND: exec.NDRange{Global: [3]int{grid, 1, 1}, Local: [3]int{16, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *ax, global int *ay, global int *aq, int natoms, int cutoff2) {
    size_t tid = get_linear_global_id();
    int gx = (int)tid;
    int gy = ((0 , (int)tid) * 7) % 48;
    long pot = 0L;
    for (int a = 0; a < natoms; a++) {
        int dx = safe_sub(ax[a], gx);
        int dy = safe_sub(ay[a], gy);
        int d2 = safe_add(safe_mul(dx, dx), safe_mul(dy, dy));
        if (d2 < cutoff2) {
            pot = safe_add(pot, (long)safe_div(safe_mul(aq[a], 4096), safe_add(1, d2)));
        }
    }
    out[tid] = (ulong)pot;
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(22)
		ax := exec.NewBuffer(cltypes.TInt, atoms)
		ay := exec.NewBuffer(cltypes.TInt, atoms)
		aq := exec.NewBuffer(cltypes.TInt, atoms)
		for i := 0; i < atoms; i++ {
			ax.SetScalar(i, uint64(rng.intn(grid)))
			ay.SetScalar(i, uint64(rng.intn(grid)))
			aq.SetScalar(i, uint64(1+rng.intn(16)))
		}
		out := exec.NewBuffer(cltypes.TULong, grid)
		return exec.Args{
			"out": {Buf: out}, "ax": {Buf: ax}, "ay": {Buf: ay}, "aq": {Buf: aq},
			"natoms": {Scalar: atoms}, "cutoff2": {Scalar: 300},
		}, out
	}
	return b
}

// LBM ports Parboil lbm: a lattice-Boltzmann stream-and-collide step over
// a 1D-flattened grid with 3 velocity directions, in fixed point.
func LBM() *Benchmark {
	const cells = 96
	b := &Benchmark{
		Suite: "Parboil", Name: "lbm", Description: "Fluid dynamics simulation",
		PaperKernels: 1, PaperUsesFP: true,
		// A single work-group: the stream step reads neighbour cells, and
		// OpenCL 1.x provides no inter-group synchronization (§4.2), so a
		// multi-group launch would race across the group boundary.
		ND: exec.NDRange{Global: [3]int{cells, 1, 1}, Local: [3]int{cells, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *f0, global int *f1, global int *f2, int ncells) {
    size_t tid = get_linear_global_id();
    int c = (int)tid;
    int left = ((c + ncells) - 1) % ncells;
    int right = (c + 1) % ncells;
    for (int step = 0; step < 4; step++) {
        int s0 = f0[c];
        int s1 = f1[left];
        int s2 = f2[right];
        barrier(CLK_GLOBAL_MEM_FENCE);
        int rho = (0 , safe_add(safe_add(s0, s1), s2));
        int u = safe_sub(s1, s2);
        int eq0 = safe_div(safe_mul(rho, 4), 9);
        int eq1 = safe_add(safe_div(rho, 9), safe_div(u, 3));
        int eq2 = safe_sub(safe_div(rho, 9), safe_div(u, 3));
        f0[c] = safe_add(s0, safe_div(safe_sub(eq0, s0), 2));
        f1[c] = safe_add(s1, safe_div(safe_sub(eq1, s1), 2));
        f2[c] = safe_add(s2, safe_div(safe_sub(eq2, s2), 2));
        barrier(CLK_GLOBAL_MEM_FENCE);
    }
    out[tid] = (ulong)(uint)safe_add(safe_add(f0[c], f1[c]), f2[c]);
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(33)
		f0 := exec.NewBuffer(cltypes.TInt, cells)
		f1 := exec.NewBuffer(cltypes.TInt, cells)
		f2 := exec.NewBuffer(cltypes.TInt, cells)
		for i := 0; i < cells; i++ {
			f0.SetScalar(i, uint64(100+rng.intn(100)))
			f1.SetScalar(i, uint64(50+rng.intn(50)))
			f2.SetScalar(i, uint64(50+rng.intn(50)))
		}
		out := exec.NewBuffer(cltypes.TULong, cells)
		return exec.Args{
			"out": {Buf: out}, "f0": {Buf: f0}, "f1": {Buf: f1}, "f2": {Buf: f2},
			"ncells": {Scalar: cells},
		}, out
	}
	return b
}

// SAD ports Parboil sad: sum-of-absolute-differences block matching from
// video encoding. Each thread scores one candidate displacement.
func SAD() *Benchmark {
	const threads = 64
	const frame = 256
	b := &Benchmark{
		Suite: "Parboil", Name: "sad", Description: "Video processing",
		PaperKernels: 3, PaperUsesFP: false,
		ND: exec.NDRange{Global: [3]int{threads, 1, 1}, Local: [3]int{16, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *cur, global int *reff, int framelen) {
    size_t tid = get_linear_global_id();
    int disp = (int)tid;
    if ((int)get_group_id(0) < 0) { disp = 0; }
    int sad = 0;
    int best = 2147483647;
    int bestd = 0;
    for (int d = 0; d < 4; d++) {
        sad = 0;
        for (int i = 0; i < 16; i++) {
            int a = cur[i];
            int bidx = ((disp + d) + i) % framelen;
            int bb = reff[bidx];
            sad = safe_add(sad, (int)abs(safe_sub(a, bb)));
        }
        if (sad < best) { best = sad; bestd = d; }
    }
    out[tid] = (ulong)(uint)safe_add(safe_mul(best, 16), bestd);
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(44)
		cur := exec.NewBuffer(cltypes.TInt, 16)
		reff := exec.NewBuffer(cltypes.TInt, frame)
		for i := 0; i < 16; i++ {
			cur.SetScalar(i, uint64(rng.intn(256)))
		}
		for i := 0; i < frame; i++ {
			reff.SetScalar(i, uint64(rng.intn(256)))
		}
		out := exec.NewBuffer(cltypes.TULong, threads)
		return exec.Args{
			"out": {Buf: out}, "cur": {Buf: cur}, "reff": {Buf: reff},
			"framelen": {Scalar: frame},
		}, out
	}
	return b
}

// SPMV ports Parboil spmv: a CSR sparse matrix-vector product. The port
// preserves the data race the paper discovered in the original (§2.4): a
// shared scratch accumulator is updated by overlapping rows without
// synchronization, so the executor's race checker flags it and the Table 3
// campaign excludes it, exactly as the paper did.
func SPMV() *Benchmark {
	const rows = 32
	b := &Benchmark{
		Suite: "Parboil", Name: "spmv", Description: "Linear algebra",
		PaperKernels: 1, PaperUsesFP: true, HasRace: true,
		ND: exec.NDRange{Global: [3]int{rows, 1, 1}, Local: [3]int{rows, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *rowp, global int *cols, global int *vals, global int *x, global int *scratch) {
    size_t tid = get_linear_global_id();
    int row = (int)tid;
    int acc = 0;
    int first = rowp[row];
    int last = rowp[row + 1];
    for (int e = first; e < last; e++) {
        acc = safe_add(acc, safe_mul(vals[e], x[cols[e]]));
    }
    scratch[row % 8] = safe_add(scratch[row % 8], acc);
    out[tid] = (ulong)(uint)acc;
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(55)
		nnzPerRow := 4
		rowp := exec.NewBuffer(cltypes.TInt, rows+1)
		cols := exec.NewBuffer(cltypes.TInt, rows*nnzPerRow)
		vals := exec.NewBuffer(cltypes.TInt, rows*nnzPerRow)
		x := exec.NewBuffer(cltypes.TInt, rows)
		for i := 0; i <= rows; i++ {
			rowp.SetScalar(i, uint64(i*nnzPerRow))
		}
		for i := 0; i < rows*nnzPerRow; i++ {
			cols.SetScalar(i, uint64(rng.intn(rows)))
			vals.SetScalar(i, uint64(rng.intn(64)))
		}
		for i := 0; i < rows; i++ {
			x.SetScalar(i, uint64(rng.intn(64)))
		}
		scratch := exec.NewBuffer(cltypes.TInt, 8)
		out := exec.NewBuffer(cltypes.TULong, rows)
		return exec.Args{
			"out": {Buf: out}, "rowp": {Buf: rowp}, "cols": {Buf: cols},
			"vals": {Buf: vals}, "x": {Buf: x}, "scratch": {Buf: scratch},
		}, out
	}
	return b
}

// TPACF ports Parboil tpacf: two-point angular correlation — histogram the
// pairwise separations of points; each thread bins its point against all
// others.
func TPACF() *Benchmark {
	const points = 48
	const bins = 8
	b := &Benchmark{
		Suite: "Parboil", Name: "tpacf", Description: "Nbody method",
		PaperKernels: 1, PaperUsesFP: true,
		ND: exec.NDRange{Global: [3]int{points, 1, 1}, Local: [3]int{16, 1, 1}},
		Src: `
kernel void entry(global ulong *out, global int *px, global int *py, global int *hist, int npoints) {
    size_t tid = get_linear_global_id();
    int i = (int)tid;
    if ((int)get_group_id(0) < 0) { i = 0; }
    int localcount = 0;
    for (int j = 0; j < npoints; j++) {
        if (j != i) {
            int dx = safe_sub(px[i], px[j]);
            int dy = safe_sub(py[i], py[j]);
            int d2 = safe_add(safe_mul(dx, dx), safe_mul(dy, dy));
            int bin = (int)(((uint)d2 / 128u) % 8u);
            atomic_inc(&hist[bin]);
            localcount = safe_add(localcount, bin);
        }
    }
    out[tid] = (ulong)(uint)localcount;
}
`,
	}
	b.MakeArgs = func() (exec.Args, *exec.Buffer) {
		rng := lcg(66)
		px := exec.NewBuffer(cltypes.TInt, points)
		py := exec.NewBuffer(cltypes.TInt, points)
		for i := 0; i < points; i++ {
			px.SetScalar(i, uint64(rng.intn(32)))
			py.SetScalar(i, uint64(rng.intn(32)))
		}
		hist := exec.NewBuffer(cltypes.TInt, bins)
		out := exec.NewBuffer(cltypes.TULong, points)
		return exec.Args{
			"out": {Buf: out}, "px": {Buf: px}, "py": {Buf: py},
			"hist": {Buf: hist}, "npoints": {Scalar: points},
		}, out
	}
	return b
}
