// Package oracle implements the majority-voting oracle of random
// differential testing (paper §3.2, §7.3): a deterministic kernel should
// yield one result everywhere, so among the results computed across
// configurations, a sufficiently large majority is assumed correct and
// deviating results flag miscompilations.
//
// WrongCode takes the per-configuration Results of one kernel and returns
// the keys voted wrong; Equal compares raw output vectors. The harness
// tallies the returned keys into the w/bf/c/to/ok counters of Tables 4
// and 5.
package oracle
