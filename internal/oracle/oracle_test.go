package oracle_test

import (
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/oracle"
)

func res(key string, outcome device.Outcome, out ...uint64) oracle.Result {
	return oracle.Result{Key: key, Outcome: outcome, Output: out}
}

// TestMajorityBasics: the §7.3 rule — a wrong code result requires a
// majority of at least 3 among the non-{bf,c,to} results.
func TestMajorityBasics(t *testing.T) {
	// Clear majority of 4 vs 1 deviant.
	rs := []oracle.Result{
		res("1+", device.OK, 7), res("2+", device.OK, 7),
		res("3+", device.OK, 7), res("4+", device.OK, 7),
		res("9+", device.OK, 8),
	}
	wrong := oracle.WrongCode(rs)
	if len(wrong) != 1 || wrong[0] != "9+" {
		t.Errorf("WrongCode = %v, want [9+]", wrong)
	}

	// Only two agreeing results: below the threshold, no verdict.
	rs = []oracle.Result{
		res("1+", device.OK, 7), res("2+", device.OK, 7),
		res("9+", device.OK, 8),
	}
	if w := oracle.WrongCode(rs); w != nil {
		t.Errorf("verdict %v from a majority below 3", w)
	}

	// Tie 3 vs 3: no strict majority, no verdict.
	rs = []oracle.Result{
		res("1+", device.OK, 7), res("2+", device.OK, 7), res("3+", device.OK, 7),
		res("12+", device.OK, 8), res("13+", device.OK, 8), res("14+", device.OK, 8),
	}
	if w := oracle.WrongCode(rs); w != nil {
		t.Errorf("verdict %v from a 3-3 tie", w)
	}
}

// TestFailuresDoNotVote: build failures, crashes and timeouts are excluded
// from the vote.
func TestFailuresDoNotVote(t *testing.T) {
	rs := []oracle.Result{
		res("1+", device.OK, 7), res("2+", device.OK, 7), res("3+", device.OK, 7),
		res("5+", device.BuildFailure), res("6+", device.Crash), res("7+", device.Timeout),
		res("9+", device.OK, 9),
	}
	wrong := oracle.WrongCode(rs)
	if len(wrong) != 1 || wrong[0] != "9+" {
		t.Errorf("WrongCode = %v, want [9+]", wrong)
	}
	maj, ok := oracle.Majority(rs)
	if !ok || maj == "" {
		t.Error("majority not found despite 3 agreeing computed results")
	}
}

// TestOutputLengthMatters: outputs of different lengths never collide.
func TestOutputLengthMatters(t *testing.T) {
	rs := []oracle.Result{
		res("1+", device.OK, 1, 2, 3),
		res("2+", device.OK, 1, 2, 3),
		res("3+", device.OK, 1, 2, 3),
		res("9+", device.OK, 1, 2),
	}
	wrong := oracle.WrongCode(rs)
	if len(wrong) != 1 || wrong[0] != "9+" {
		t.Errorf("WrongCode = %v, want [9+] (shorter output must disagree)", wrong)
	}
}

// TestEqual covers the comparison helper.
func TestEqual(t *testing.T) {
	if !oracle.Equal([]uint64{1, 2}, []uint64{1, 2}) {
		t.Error("equal slices reported unequal")
	}
	if oracle.Equal([]uint64{1, 2}, []uint64{1, 3}) || oracle.Equal([]uint64{1}, []uint64{1, 1}) {
		t.Error("unequal slices reported equal")
	}
	if !oracle.Equal(nil, nil) {
		t.Error("nil slices must be equal")
	}
}
