package oracle

import (
	"fmt"
	"sort"

	"clfuzz/internal/device"
)

// MinMajority is the paper's vote threshold: a wrong code result requires
// a majority of at least 3 among the non-{bf,c,to} results (§7.3).
const MinMajority = 3

// Result is one (configuration, optimization level) observation for a
// kernel.
type Result struct {
	// Key identifies the observer, e.g. "12+" or "3-" in the paper's
	// notation.
	Key     string
	Outcome device.Outcome
	Output  []uint64
}

// fingerprint folds an output into a comparable key.
func fingerprint(out []uint64) string {
	h := uint64(14695981039346656037)
	for _, v := range out {
		h ^= v
		h *= 1099511628211
	}
	return fmt.Sprintf("%d:%016x", len(out), h)
}

// Majority computes the majority output among the OK results. It returns
// the fingerprint of the majority output and true when a majority of at
// least MinMajority exists.
func Majority(results []Result) (string, bool) {
	counts := map[string]int{}
	for _, r := range results {
		if r.Outcome == device.OK {
			counts[fingerprint(r.Output)]++
		}
	}
	best, bestN, secondN := "", 0, 0
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie handling
	for _, k := range keys {
		n := counts[k]
		if n > bestN {
			best, secondN, bestN = k, bestN, n
		} else if n > secondN {
			secondN = n
		}
	}
	if bestN >= MinMajority && bestN > secondN {
		return best, true
	}
	return "", false
}

// WrongCode returns the keys of OK results that disagree with the majority
// output, or nil when no majority of at least MinMajority exists. It is
// possible in principle for the majority to be wrong; the paper reports
// never observing that in practice (§7.3), and neither do the injected-
// defect campaigns here, since defects are configuration-specific.
func WrongCode(results []Result) []string {
	maj, ok := Majority(results)
	if !ok {
		return nil
	}
	var wrong []string
	for _, r := range results {
		if r.Outcome == device.OK && fingerprint(r.Output) != maj {
			wrong = append(wrong, r.Key)
		}
	}
	return wrong
}

// Equal reports whether two outputs match.
func Equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
