// Package bugs defines the injected compiler-defect model. Each simulated
// OpenCL configuration (internal/device) carries a Set of defect flags
// per optimization level; the front end (internal/sema), the optimizer
// (internal/opt) and the executor (internal/exec) consult the flags at
// the code locations where the corresponding real-world defect
// manifested.
//
// Every flag models a bug class that the paper reports in §6 /
// Figures 1–2. All triggers are deterministic — feature predicates on the
// program plus content hashing (Hash/Gate) for the "unpredictable"
// crash/ICE classes — so campaign results are exactly reproducible while
// exhibiting the rate shape of the paper's tables.
package bugs
