package bugs_test

import (
	"testing"
	"testing/quick"

	"clfuzz/internal/bugs"
)

// TestSetHas: bitmask membership.
func TestSetHas(t *testing.T) {
	s := bugs.WCComma | bugs.FEIntSizeTMix
	if !s.Has(bugs.WCComma) || !s.Has(bugs.FEIntSizeTMix) {
		t.Error("Has misses present flags")
	}
	if s.Has(bugs.WCRotateConstFold) {
		t.Error("Has reports an absent flag")
	}
	if !s.Has(bugs.WCComma | bugs.FEIntSizeTMix) {
		t.Error("Has must require every flag in the query")
	}
	if s.Has(bugs.WCComma | bugs.WCRotateConstFold) {
		t.Error("Has must not report a partially present query")
	}
}

// TestHashDeterministic: the source hash is a pure function with spread.
func TestHashDeterministic(t *testing.T) {
	a := bugs.Hash("kernel void k() {}")
	b := bugs.Hash("kernel void k() {}")
	c := bugs.Hash("kernel void k() { }")
	if a != b {
		t.Error("hash is not deterministic")
	}
	if a == c {
		t.Error("hash ignores content")
	}
}

// TestGateRate: a divisor-d gate fires for roughly 1/d of random inputs
// (within generous tolerance), never for divisor 0, and different salts
// decorrelate.
func TestGateRate(t *testing.T) {
	const n = 20000
	for _, div := range []uint64{2, 4, 10, 25} {
		hits := 0
		for i := 0; i < n; i++ {
			h := bugs.Hash(string(rune(i)) + "salt-test")
			if bugs.Gate(h, 0x1234, div) {
				hits++
			}
		}
		rate := float64(hits) / n
		want := 1 / float64(div)
		if rate < want*0.7 || rate > want*1.3 {
			t.Errorf("divisor %d: rate %.4f, want ~%.4f", div, rate, want)
		}
	}
	f := func(h uint64) bool { return !bugs.Gate(h, 1, 0) }
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("divisor 0 fired: %v", err)
	}
	// Salt decorrelation: both gates firing together should be ~1/d².
	both := 0
	for i := 0; i < n; i++ {
		h := bugs.Hash(string(rune(i)) + "decorrelate")
		if bugs.Gate(h, 1, 4) && bugs.Gate(h, 2, 4) {
			both++
		}
	}
	if rate := float64(both) / n; rate > 0.15 {
		t.Errorf("salted gates correlate: joint rate %.4f", rate)
	}
}
