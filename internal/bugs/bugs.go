package bugs

// Set is a bitmask of injected defect flags.
type Set uint64

// Defect flags. The comment on each flag names the paper configuration(s)
// that exhibited the modeled bug and the figure that documents it.
const (
	// FEIntSizeTMix rejects legal arithmetic mixing int and size_t
	// operands ("invalid operands to binary expression ('int' and
	// 'size_t')"). Intel Xeon, config 15±, §6 "Build failures".
	FEIntSizeTMix Set = 1 << iota

	// FEVectorLogicalReject rejects logical operations on vectors, which
	// conformant implementations must support. Altera, configs 20/21, §6.
	FEVectorLogicalReject

	// FEVectorInStructICE raises an internal error when a vector type
	// appears inside a struct. Altera, configs 20/21, Figure 1(c).
	FEVectorInStructICE

	// FECompileHangLoop sends the compiler into an unbounded loop for a
	// for-loop of constant bound >= 197 whose body conditionally enters
	// while(1). Intel HD Graphics, configs 7/8, Figure 1(e).
	FECompileHangLoop

	// FESlowStructBarrier makes compilation prohibitively slow when a
	// sizable struct coexists with a barrier. Intel Xeon Phi, config 18,
	// Figure 1(f).
	FESlowStructBarrier

	// FEICEAttr fails the build with LLVM attribute internal errors
	// ("Wrong type for attribute zeroext"), hash-gated. NVIDIA older
	// drivers, configs 1/2, §6 "Build failures".
	FEICEAttr

	// FEICEPass fails the build inside named optimization passes ("Intel
	// OpenCL Vectorizer", "Intel OpenCL Barrier"), hash-gated. Intel CPU
	// configs 12/13 with optimizations, §6.
	FEICEPass

	// FEICEBarrierHeavy fails builds of kernels that make extensive use
	// of barriers, hash-gated. Intel i5, config 14 without optimizations
	// (Table 4: high bf for BARRIER/ATOMIC REDUCTION/ALL).
	FEICEBarrierHeavy

	// WCStructCharFirst miscompiles any struct whose leading char field is
	// followed by a larger member: the char field reads as zero. AMD
	// configs 5/6/16 with optimizations, Figure 1(a).
	WCStructCharFirst

	// WCStructCopyNx1 drops an array element during struct assignment,
	// but only when the x grid dimension is 1 and optimizations are off.
	// Anonymous GPU configs 10/11, Figure 1(b).
	WCStructCopyNx1

	// WCStructDeep miscompiles (hash-gated) struct assignments for
	// structs containing nested aggregates. Intel HD Graphics configs
	// 7/8 and older anonymous drivers 10/11, §6 "Problems with structs".
	WCStructDeep

	// WCStructPtrWriteBarrier loses stores performed through a pointer-
	// to-struct parameter once a barrier has executed. Anonymous CPU
	// config 17, Figure 1(d).
	WCStructPtrWriteBarrier

	// WCUnionInit initializes only the first two bytes of a union whose
	// members include a struct with a leading short field; the remaining
	// bytes read as ones. NVIDIA configs 1–4 without optimizations,
	// Figure 2(a).
	WCUnionInit

	// WCRotateConstFold constant-folds rotate() with literal arguments to
	// an all-ones pattern. Intel i5 config 14±, Figure 2(b).
	WCRotateConstFold

	// WCBarrierFwdDecl miscompiles kernels that call a forward-declared
	// function after a barrier: non-leader threads lose stores through
	// pointer parameters. Intel configs 12/13 without optimizations,
	// Figure 2(c).
	WCBarrierFwdDecl

	// CrashBarrierFwdDecl crashes (segmentation fault) on the same
	// trigger as WCBarrierFwdDecl. Intel configs 14/15 without
	// optimizations, Figure 2(c).
	CrashBarrierFwdDecl

	// WCDeadLoopBarrier miscompiles a loop whose body is unreachable but
	// contains a barrier: non-leader threads see the loop's induction
	// assignment clobbered. Intel configs 14/15 without optimizations,
	// Figure 2(d).
	WCDeadLoopBarrier

	// WCGroupIDExpr miscompiles comparisons whose operands involve the
	// group id. Anonymous GPU config 9 with optimizations, Figure 2(e).
	WCGroupIDExpr

	// WCComma mishandles the comma operator: the pair evaluates to zero
	// rather than to the right operand. Oclgrind config 19±, Figure 2(f).
	WCComma

	// WCSwizzleFold miscompiles constant folding of vector swizzles (off-
	// by-one component). Models the optimization-sensitive vector wrong-
	// code results of Intel configs 14/15 with optimizations (Table 4).
	WCSwizzleFold

	// CrashHash crashes at runtime for a hash-gated subset of kernels,
	// modeling the unpredictable machine/driver crashes of §6 "Machine
	// crashes". The per-configuration rate divisor is in device.Config.
	CrashHash

	// CrashBarrierHeavy crashes kernels that use barriers, hash-gated at
	// a high rate. Intel configs 14/15 without optimizations (Table 4:
	// ~40% crash rate in the barrier-heavy modes).
	CrashBarrierHeavy

	// BFHash fails the build for a hash-gated subset of kernels,
	// modeling residual internal errors (Altera FPGA config 21: "the
	// majority of tests either crashed or emitted an internal error").
	BFHash

	// SlowCompileHash compiles slowly for a hash-gated subset of kernels
	// (observed as a timeout). Intel configs 12/13 with optimizations
	// (Table 4: high to counts with optimizations on).
	SlowCompileHash
)

// Has reports whether every flag in b is present in s.
func (s Set) Has(b Set) bool { return s&b == b }

// FNV-1a, used for all hash gating so that triggers are deterministic
// functions of kernel source text.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash returns the FNV-1a hash of the kernel source, the seed for all
// hash-gated defect triggers.
func Hash(src string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= prime64
	}
	return h
}

// Gate reports whether a hash-gated defect with the given rate divisor
// fires for the kernel hash. A divisor d fires for roughly 1/d of kernels;
// salt decorrelates distinct defects on the same kernel. A divisor of 0
// never fires.
func Gate(hash uint64, salt uint64, divisor uint64) bool {
	if divisor == 0 {
		return false
	}
	h := hash ^ (salt * prime64)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h%divisor == 0
}
