module clfuzz

go 1.22
